// Package httpsim implements the HTTP/1.1 subset the IW scan exercises:
// a request/response codec shared by the prober and the simulated
// servers, and a tcpstack.App reproducing the server behaviours §3.2 of
// the paper builds on — 200 pages of configurable size, 301 redirects
// whose Location header the scanner follows, 404 error pages that echo
// the request URI (so URI bloat enlarges them), Akamai-style error pages
// that do not, and servers that reset or stay silent.
package httpsim

import (
	"fmt"
	"strconv"
	"strings"
)

// Request is a parsed HTTP request head. The scanner only ever sends
// bodyless GETs, so no body handling is needed.
type Request struct {
	Method  string
	Path    string
	Proto   string
	Headers map[string]string // canonical lower-case keys
}

// Header returns a header value by case-insensitive name.
func (r *Request) Header(name string) string {
	return r.Headers[strings.ToLower(name)]
}

// ParseRequest parses a complete request head from b. It returns nil
// (and no error) when the head is not yet complete, so callers can feed
// it a growing buffer.
func ParseRequest(b []byte) (*Request, error) {
	head, ok := splitHead(b)
	if !ok {
		return nil, nil
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return nil, fmt.Errorf("httpsim: malformed request line %q", lines[0])
	}
	req := &Request{
		Method:  parts[0],
		Path:    parts[1],
		Proto:   parts[2],
		Headers: make(map[string]string),
	}
	for _, l := range lines[1:] {
		if l == "" {
			continue
		}
		k, v, found := strings.Cut(l, ":")
		if !found {
			return nil, fmt.Errorf("httpsim: malformed header %q", l)
		}
		req.Headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	return req, nil
}

// splitHead returns the request/response head (without the trailing
// blank line) and whether the head is complete.
func splitHead(b []byte) (string, bool) {
	i := strings.Index(string(b), "\r\n\r\n")
	if i < 0 {
		return "", false
	}
	return string(b[:i]), true
}

// BuildRequest renders a GET request with the given path and headers.
// Header order is deterministic (host, then the rest as given).
func BuildRequest(path, host string, extra ...string) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "GET %s HTTP/1.1\r\n", path)
	fmt.Fprintf(&sb, "Host: %s\r\n", host)
	for i := 0; i+1 < len(extra); i += 2 {
		fmt.Fprintf(&sb, "%s: %s\r\n", extra[i], extra[i+1])
	}
	sb.WriteString("\r\n")
	return []byte(sb.String())
}

// ResponseHead is the parsed beginning of an HTTP response. The scanner
// often sees only a prefix of the full response (it never ACKs past the
// IW), so parsing is tolerant: Complete reports whether the blank line
// terminating the head was seen, and Location may be extracted from a
// partial head.
type ResponseHead struct {
	StatusCode int
	Location   string
	Connection string
	ContentLen int // -1 when absent or not yet seen
	Complete   bool
}

// ParseResponseHead extracts what it can from a possibly-truncated
// response prefix. It returns nil if b does not start like an HTTP
// response.
func ParseResponseHead(b []byte) *ResponseHead {
	s := string(b)
	if !strings.HasPrefix(s, "HTTP/") {
		if len(s) < 5 && strings.HasPrefix("HTTP/", s) {
			// Too short to tell; treat as "not yet".
			return &ResponseHead{ContentLen: -1}
		}
		return nil
	}
	h := &ResponseHead{ContentLen: -1}
	head, complete := splitHead(b)
	h.Complete = complete
	if !complete {
		head = s
	}
	lines := strings.Split(head, "\r\n")
	// Status line: HTTP/1.1 301 Moved Permanently
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) >= 2 {
		if code, err := strconv.Atoi(parts[1]); err == nil {
			h.StatusCode = code
		}
	}
	for _, l := range lines[1:] {
		k, v, found := strings.Cut(l, ":")
		if !found {
			continue
		}
		v = strings.TrimSpace(v)
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "location":
			h.Location = v
		case "connection":
			h.Connection = strings.ToLower(v)
		case "content-length":
			if n, err := strconv.Atoi(v); err == nil {
				h.ContentLen = n
			}
		}
	}
	return h
}

// ParseURI splits an absolute http:// URI into host and path. Relative
// URIs are returned with an empty host. The scanner uses this to follow
// Location headers.
func ParseURI(uri string) (host, path string) {
	rest, ok := strings.CutPrefix(uri, "http://")
	if !ok {
		if rest2, ok2 := strings.CutPrefix(uri, "https://"); ok2 {
			rest = rest2
		} else {
			// Relative.
			if !strings.HasPrefix(uri, "/") {
				uri = "/" + uri
			}
			return "", uri
		}
	}
	host, path, found := strings.Cut(rest, "/")
	if !found {
		return host, "/"
	}
	return host, "/" + path
}

// BuildResponse renders a response with deterministic header order.
func BuildResponse(code int, reason string, body []byte, headers ...string) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "HTTP/1.1 %d %s\r\n", code, reason)
	for i := 0; i+1 < len(headers); i += 2 {
		fmt.Fprintf(&sb, "%s: %s\r\n", headers[i], headers[i+1])
	}
	fmt.Fprintf(&sb, "Content-Length: %d\r\n", len(body))
	sb.WriteString("Connection: close\r\n\r\n")
	out := []byte(sb.String())
	return append(out, body...)
}
