package experiments

import (
	"fmt"
	"strings"

	"iwscan/internal/core"
	"iwscan/internal/inet"
)

// EfficiencyResult reproduces §3.4: the IW scan needs only modestly more
// time than a plain ZMap port scan at the same send rate, because only
// the small live fraction of the address space requires full TCP
// connections.
type EfficiencyResult struct {
	SampledAddresses int64
	SampledLive      int64

	// Scanner-sent packets per dark address and per live host, measured
	// from the sampled scans.
	PortDarkPkts float64
	PortLivePkts float64
	IWDarkPkts   float64
	IWLivePkts   float64

	// Extrapolated full-IPv4 durations at the paper's conditions: 150k
	// packets/s over ~3.67 B post-blacklist addresses of which ~1.3%
	// answer on port 80.
	PortScanHours float64
	IWScanHours   float64
}

// Real-Internet extrapolation constants: the paper's 6.8 h port scan at
// 150 kpps implies ~3.67 B probed addresses; 48.3 M of them (1.3%) were
// HTTP-reachable.
const (
	realAddresses = 6.8 * 3600 * 150000
	realLiveFrac  = 48.3e6 / realAddresses
	paperRate     = 150000.0
)

// Efficiency runs a port scan and a single-probe HTTP IW scan over the
// same (sampled) space, measures per-address packet costs, and
// extrapolates full-IPv4 durations at the paper's live-host density.
func Efficiency(u *inet.Universe, seed uint64, sample float64) *EfficiencyResult {
	if sample <= 0 || sample > 1 {
		sample = 1
	}
	port := RunScan(u, ScanConfig{
		Seed: seed, Strategy: core.StrategySYN, SampleFraction: sample,
	})
	// The paper's full-space timing is for one probe per address; the
	// repeated-probe design applies to the measurement scans.
	iw := RunScan(u, ScanConfig{
		Seed: seed, Strategy: core.StrategyHTTP, SampleFraction: sample,
		MSSList: []int{64}, Repeats: 1,
	})

	live := int64(0)
	for i := range port.Records {
		if port.Records[i].Outcome != core.OutcomeUnreachable {
			live++
		}
	}
	dark := port.Engine.Launched - live
	r := &EfficiencyResult{
		SampledAddresses: port.Engine.Launched,
		SampledLive:      live,
	}
	if dark <= 0 || live <= 0 {
		return r
	}
	// Dark addresses cost exactly one SYN in both scan types; attribute
	// the remainder of the scanner's sends to live hosts.
	r.PortDarkPkts = 1
	r.PortLivePkts = float64(port.Scan.PacketsSent-dark) / float64(live)
	r.IWDarkPkts = 1
	r.IWLivePkts = float64(iw.Scan.PacketsSent-dark) / float64(live)

	realLive := realAddresses * realLiveFrac
	realDark := realAddresses - realLive
	r.PortScanHours = (realDark*r.PortDarkPkts + realLive*r.PortLivePkts) / paperRate / 3600
	r.IWScanHours = (realDark*r.IWDarkPkts + realLive*r.IWLivePkts) / paperRate / 3600
	return r
}

// Render formats the comparison.
func (r *EfficiencyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.4: scan efficiency at 150k packets/s (sampled %d addresses, %d live)\n",
		r.SampledAddresses, r.SampledLive)
	fmt.Fprintf(&b, "  scanner packets per dark address: port %.1f, IW %.1f\n", r.PortDarkPkts, r.IWDarkPkts)
	fmt.Fprintf(&b, "  scanner packets per live host:    port %.1f, IW %.1f\n", r.PortLivePkts, r.IWLivePkts)
	fmt.Fprintf(&b, "  extrapolated full-IPv4 duration: port scan %.1f h (paper %.1f), IW scan %.1f h (paper %.1f)\n",
		r.PortScanHours, PaperEfficiency.PortScanHours, r.IWScanHours, PaperEfficiency.IWScanHours)
	if r.PortScanHours > 0 {
		fmt.Fprintf(&b, "  overhead of full-connection probing: %.0f%% (paper: %.0f%%)\n",
			100*(r.IWScanHours/r.PortScanHours-1),
			100*(PaperEfficiency.IWScanHours/PaperEfficiency.PortScanHours-1))
	}
	return b.String()
}
