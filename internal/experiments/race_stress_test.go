package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"iwscan/internal/checkpoint"
	"iwscan/internal/core"
	"iwscan/internal/flight"
	"iwscan/internal/inet"
	"iwscan/internal/netsim"
	"iwscan/internal/output"
	"iwscan/internal/timeseries"
)

// The `make race` centerpiece for the per-shard engine split: every
// cross-shard surface that survived the refactor — the k-way merge, the
// timeseries store, the debug server's shard registry table — exercised
// at once. An 8-shard parallel scan streams through the merge with
// telemetry armed; eight per-shard checkpoint interrupt loops
// (Shard=s/Shards=8, the cross-process distribution shape) splice their
// slices through TimeLimit/Resume cycles against a second shard-aware
// debug server; and scraper goroutines hammer /metrics, /metrics.json
// and /timeseries on both servers the whole time. Any shared mutable
// state outside the documented mutex-guarded surfaces shows up here as
// a race report; any perturbation of engine state by observation shows
// up as a byte diff against the uninterrupted references.

// raceShardCfg is the per-shard configuration for the interrupt loops:
// rate 50 against a ~3s probe tail gives each 1/8 slice enough virtual
// runway (~8s) for the 3.6s limits to land mid-scan at least once.
func raceShardCfg(shard int) ScanConfig {
	return ScanConfig{
		Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.004,
		Rate: 50, MSSList: []int{64}, Repeats: 1,
		Shard: uint64(shard), Shards: 8,
	}
}

func TestParallelScrapeCheckpointRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute under -race; skipping in -short")
	}
	u := inet.NewInternet2017(2017)

	// Uninterrupted per-shard references, no observation armed. The
	// concurrent interrupted runs must reproduce these bytes exactly.
	refs := make([][]byte, 8)
	for s := 0; s < 8; s++ {
		var buf bytes.Buffer
		cfg := raceShardCfg(s)
		cfg.Sink = output.NewBinarySink(&buf)
		res, err := RunScanChecked(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Incomplete || buf.Len() == 0 {
			t.Fatalf("shard %d reference run incomplete or empty", s)
		}
		refs[s] = buf.Bytes()
	}

	parDbg := flight.NewDebugServer()
	parSrv := httptest.NewServer(parDbg.Handler())
	defer parSrv.Close()
	ckDbg := flight.NewDebugServer()
	ckSrv := httptest.NewServer(ckDbg.Handler())
	defer ckSrv.Close()

	done := make(chan struct{})
	var scrapers sync.WaitGroup
	paths := []string{"/metrics", "/metrics.json", "/timeseries"}
	for _, base := range []string{parSrv.URL, ckSrv.URL} {
		scrapers.Add(1)
		go func(base string) {
			defer scrapers.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(base + paths[i%len(paths)])
				if err != nil {
					t.Errorf("scrape %s: %v", base, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape %s%s: status %d", base, paths[i%len(paths)], resp.StatusCode)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(base)
	}

	var workers sync.WaitGroup

	// Worker A: the 8-shard parallel scan, telemetry + debug armed,
	// streaming IWB1 through the k-way merge while being scraped.
	var parBuf bytes.Buffer
	workers.Add(1)
	go func() {
		defer workers.Done()
		cfg := ScanConfig{
			Seed: 11, Strategy: core.StrategyHTTP, SampleFraction: 0.003,
			Rate: 10000, MSSList: []int{64}, Repeats: 1,
			Sink:       output.NewBinarySink(&parBuf),
			Timeseries: timeseries.NewStore(timeseries.Config{Ring: 64}),
			Debug:      parDbg,
		}
		res, err := RunScanParallelChecked(u, cfg, 8)
		if err != nil {
			t.Errorf("parallel scan: %v", err)
			return
		}
		if res.Incomplete || parBuf.Len() == 0 {
			t.Error("parallel scan incomplete or produced no output")
		}
	}()

	// Workers B: eight per-shard checkpoint interrupt loops. Each shard
	// is its own scan instance (its own checkpoint file and cursor, as
	// cross-process ZMap distribution would be), repeatedly killed by a
	// virtual TimeLimit and resumed, with telemetry flowing into one
	// shared store and its registry attached to the shared debug server.
	ckStore := timeseries.NewStore(timeseries.Config{Ring: 64})
	ckDbg.SetTimeseries(ckStore)
	dir := t.TempDir()
	interrupts := make([]int, 8)
	for s := 0; s < 8; s++ {
		workers.Add(1)
		go func(s int) {
			defer workers.Done()
			var got bytes.Buffer
			ckPath := filepath.Join(dir, fmt.Sprintf("shard%d.ck", s))
			limits := []netsim.Time{3600 * netsim.Millisecond, 3700 * netsim.Millisecond}
			for seg := 0; ; seg++ {
				if seg >= 40 {
					t.Errorf("shard %d: no completion within 40 segments", s)
					return
				}
				cfg := raceShardCfg(s)
				cfg.CheckpointPath = ckPath
				cfg.CheckpointInterval = netsim.Second
				cfg.TimeLimit = limits[seg%len(limits)]
				cfg.Timeseries = ckStore
				cfg.Debug = ckDbg
				if seg == 0 {
					cfg.Sink = output.NewBinarySink(&got)
				} else {
					st, err := checkpoint.Load(ckPath)
					if err != nil {
						t.Errorf("shard %d segment %d: %v", s, seg, err)
						return
					}
					cfg.Resume = st
					cfg.Sink = output.NewBinaryAppendSink(&got)
				}
				res, err := RunScanChecked(u, cfg)
				if err != nil {
					t.Errorf("shard %d segment %d: %v", s, seg, err)
					return
				}
				if !res.Incomplete {
					break
				}
				interrupts[s]++
			}
			if !bytes.Equal(got.Bytes(), refs[s]) {
				t.Errorf("shard %d: spliced output under concurrent scrapes differs from reference (%d vs %d bytes)",
					s, got.Len(), len(refs[s]))
			}
		}(s)
	}

	workers.Wait()
	close(done)
	scrapers.Wait()
	if t.Failed() {
		return
	}

	total := 0
	for s, n := range interrupts {
		t.Logf("shard %d: %d checkpoint interrupts", s, n)
		total += n
	}
	if total < 4 {
		t.Errorf("only %d checkpoint interrupts across 8 shards; limits are not landing mid-scan", total)
	}

	// The scraped metrics must include the per-shard pool counters the
	// engine split introduced — proof the per-network pools report
	// through the registry path the scrapes just hammered.
	resp, err := http.Get(parSrv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{"netsim.packets_pooled", "netsim.pool_miss"} {
		if !strings.Contains(string(body), name) {
			t.Errorf("final /metrics.json scrape missing %s", name)
		}
	}
}
