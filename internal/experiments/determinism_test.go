package experiments

import (
	"bytes"
	"runtime"
	"testing"

	"iwscan/internal/core"
	"iwscan/internal/inet"
	"iwscan/internal/output"
	"iwscan/internal/timeseries"
)

// The determinism matrix: with per-shard simulators there is no shared
// mutable state left whose scheduling could leak into results, so a
// fixed-seed parallel scan must produce a byte-identical merged IWB1
// stream no matter how many Ps the runtime hands out, how often it is
// repeated, or whether telemetry and smart pruning are armed. Any
// divergence here means a shard observed something outside its own
// simulator.

// matrixRun executes one 4-shard parallel scan into an IWB1 buffer and
// returns the bytes. The variant hooks mutate the config before the run.
func matrixRun(t *testing.T, u *inet.Universe, variant func(*ScanConfig)) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg := ScanConfig{
		Seed: 11, Strategy: core.StrategyHTTP, SampleFraction: 0.002,
		Rate: 10000, MSSList: []int{64}, Repeats: 1,
		Sink: output.NewBinarySink(&buf),
	}
	if variant != nil {
		variant(&cfg)
	}
	res, err := RunScanParallelChecked(u, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete {
		t.Fatal("parallel run incomplete")
	}
	if buf.Len() == 0 {
		t.Fatal("no IWB1 output produced")
	}
	return buf.Bytes()
}

func TestParallelDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix runs 24 parallel scans; skipping in -short")
	}
	u := inet.NewInternet2017(2017)
	_, plan := trainPlan(t, u, 0.01)

	variants := []struct {
		name string
		cfg  func(*ScanConfig)
	}{
		{"plain", nil},
		{"telemetry", func(c *ScanConfig) {
			c.Timeseries = timeseries.NewStore(timeseries.Config{Ring: 64})
		}},
		{"smart+telemetry", func(c *ScanConfig) {
			c.Smart = plan
			c.Timeseries = timeseries.NewStore(timeseries.Config{Ring: 64})
		}},
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			var want []byte
			for _, procs := range []int{1, 2, 4, 8} {
				runtime.GOMAXPROCS(procs)
				for rep := 0; rep < 2; rep++ {
					got := matrixRun(t, u, v.cfg)
					if want == nil {
						want = got
						continue
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("GOMAXPROCS=%d rep=%d: merged IWB1 stream diverged (%d vs %d bytes)",
							procs, rep, len(got), len(want))
					}
				}
			}
			// The stream must also decode: magic intact, records in
			// permutation order (BinaryReader validates framing).
			r, err := output.NewBinaryReader(bytes.NewReader(want))
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for {
				if _, err := r.Next(); err != nil {
					break
				}
				n++
			}
			if n == 0 {
				t.Fatal("decoded zero records from merged stream")
			}
		})
	}
}

// TestParallelMatrixMatchesSerial: the GOMAXPROCS=1 case is not just
// self-consistent — it is byte-identical to the unsharded engine's
// stream, the cross-check that pins the matrix to ground truth.
func TestParallelMatrixMatchesSerial(t *testing.T) {
	u := inet.NewInternet2017(2017)
	par := matrixRun(t, u, nil)

	var buf bytes.Buffer
	cfg := ScanConfig{
		Seed: 11, Strategy: core.StrategyHTTP, SampleFraction: 0.002,
		Rate: 10000, MSSList: []int{64}, Repeats: 1,
		Sink: output.NewBinarySink(&buf),
	}
	if _, err := RunScanChecked(u, cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(par, buf.Bytes()) {
		t.Fatalf("4-shard merged stream (%d bytes) != serial stream (%d bytes)",
			len(par), buf.Len())
	}
}
