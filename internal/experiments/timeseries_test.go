package experiments

import (
	"bytes"
	"strings"
	"testing"

	"iwscan/internal/core"
	"iwscan/internal/inet"
	"iwscan/internal/netsim"
	"iwscan/internal/output"
	"iwscan/internal/timeseries"
)

// TestTelemetryDoesNotPerturbScan is the sampler's golden guarantee:
// a scan with telemetry armed must produce record-for-record identical
// results to the bare scan. The sampler's recurring timer changes event
// sequence numbers but not relative order, and its callbacks draw no
// randomness.
func TestTelemetryDoesNotPerturbScan(t *testing.T) {
	u := inet.NewInternet2017(77)
	base := ScanConfig{Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.002}

	bare := RunScan(u, base)

	armed := base
	armed.Timeseries = timeseries.NewStore(timeseries.Config{})
	rec := RunScan(u, armed)

	if len(bare.Records) != len(rec.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(bare.Records), len(rec.Records))
	}
	for i := range bare.Records {
		if bare.Records[i] != rec.Records[i] {
			t.Fatalf("record %d differs with telemetry armed:\nbare:  %+v\narmed: %+v",
				i, bare.Records[i], rec.Records[i])
		}
	}
	if bare.Net != rec.Net {
		t.Fatalf("network counters differ with telemetry armed:\nbare:  %+v\narmed: %+v",
			bare.Net, rec.Net)
	}

	// And the run actually produced a timeline.
	samples, _ := armed.Timeseries.Series(0)
	if len(samples) < 2 {
		t.Fatalf("telemetry produced %d samples, want a timeline", len(samples))
	}
	var launched int64
	for i := range samples {
		launched += samples[i].C("engine.launched")
	}
	if launched != rec.Engine.Launched {
		t.Fatalf("sample launch deltas sum to %d, want engine total %d", launched, rec.Engine.Launched)
	}
	last := samples[len(samples)-1]
	if !last.Final {
		t.Fatalf("closing sample not marked Final")
	}
	if _, ok := last.Gauges["engine.frontier_lag"]; !ok {
		t.Fatalf("samples missing the frontier-lag probe gauge: %v", last.Gauges)
	}
}

// TestParallelTelemetryPerShard runs a sharded scan with one shared
// store: every shard must contribute its own series, the merged series
// must sum them, and the k-way merge's wait accounting must land in
// the document.
func TestParallelTelemetryPerShard(t *testing.T) {
	u := inet.NewInternet2017(77)
	dst := output.NewMemorySink()
	ts := timeseries.NewStore(timeseries.Config{})
	cfg := ScanConfig{
		Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.002,
		Sink: dst, Timeseries: ts,
	}
	const shards = 3
	res, err := RunScanParallelChecked(u, cfg, shards)
	if err != nil {
		t.Fatalf("parallel scan: %v", err)
	}

	ids := ts.Shards()
	if len(ids) != shards {
		t.Fatalf("store saw %d shards, want %d (got %v)", len(ids), shards, ids)
	}
	var launched int64
	for _, id := range ids {
		samples, _ := ts.Series(id)
		if len(samples) == 0 {
			t.Fatalf("shard %d contributed no samples", id)
		}
		for i := range samples {
			launched += samples[i].C("engine.launched")
		}
	}
	if launched != res.Engine.Launched {
		t.Fatalf("per-shard launch deltas sum to %d, want merged total %d", launched, res.Engine.Launched)
	}
	if len(res.ShardEngines) != shards {
		t.Fatalf("ShardEngines has %d entries, want %d", len(res.ShardEngines), shards)
	}

	doc := ts.Document()
	if len(doc.Merged) == 0 {
		t.Fatalf("multi-shard document missing the merged series")
	}
	if len(doc.MergeWaits) != shards {
		t.Fatalf("document has %d merge-wait rows, want %d", len(doc.MergeWaits), shards)
	}
	var writes int64
	for _, w := range doc.MergeWaits {
		writes += w.Writes
	}
	if got := int64(len(dst.Records())); writes != got {
		t.Fatalf("merge-wait writes sum to %d, want %d sink records", writes, got)
	}
}

// TestParallelFilterPolicy: shared stateful filters are rejected under
// parallel; per-shard factories are the supported route.
func TestParallelFilterPolicy(t *testing.T) {
	u := inet.NewInternet2017(77)
	cfg := ScanConfig{
		Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.001,
		Filters: []netsim.Filter{netsim.TailLossFilter(5, 0.3)},
	}
	if _, err := RunScanParallelChecked(u, cfg, 2); err == nil ||
		!strings.Contains(err.Error(), "FilterFactories") {
		t.Fatalf("shared filters under parallel: err = %v, want rejection pointing at FilterFactories", err)
	}

	cfg.Filters = nil
	cfg.FilterFactories = []func() netsim.Filter{
		func() netsim.Filter { return netsim.TailLossFilter(5, 0.3) },
	}
	par, err := RunScanParallelChecked(u, cfg, 2)
	if err != nil {
		t.Fatalf("parallel scan with filter factories: %v", err)
	}

	// Each shard built its own filter instance over its own slice of the
	// permutation; the merged result must match the serial run with the
	// same (single-instance) filter.
	serial := RunScan(u, ScanConfig{
		Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.001,
		FilterFactories: []func() netsim.Filter{
			func() netsim.Filter { return netsim.TailLossFilter(5, 0.3) },
		},
	})
	if len(par.Records) != len(serial.Records) {
		t.Fatalf("parallel filtered scan has %d records, serial %d", len(par.Records), len(serial.Records))
	}
}

// TestTelemetryStreamFromScan exercises -telemetry-out end to end at
// the library layer: stream a parallel scan to a buffer, then parse and
// verify it.
func TestTelemetryStreamFromScan(t *testing.T) {
	u := inet.NewInternet2017(77)
	var buf bytes.Buffer
	ts := timeseries.NewStore(timeseries.Config{})
	ts.StreamJSONL(&buf)
	cfg := ScanConfig{
		Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.002,
		Timeseries: ts,
	}
	if _, err := RunScanParallelChecked(u, cfg, 2); err != nil {
		t.Fatalf("parallel scan: %v", err)
	}
	if err := ts.CloseStream(); err != nil {
		t.Fatalf("CloseStream: %v", err)
	}
	samples, anomalies, err := timeseries.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if err := timeseries.VerifyStream(samples, anomalies, 2, false); err != nil {
		t.Fatalf("VerifyStream: %v", err)
	}
}

// TestPoolSeriesPerShardSelfConsistent is the accounting gate for the
// per-network packet pools: with no process-wide pool left, each
// shard's netsim.packets_pooled / netsim.pool_miss telemetry series
// must sum to exactly what that shard's own simulator counted — which,
// because shards are fully independent, equals a standalone run of the
// same slice — and the shard sums must add up to the parallel run's
// merged snapshot with nothing double counted and nothing lost.
func TestPoolSeriesPerShardSelfConsistent(t *testing.T) {
	u := inet.NewInternet2017(77)
	const shards = 4
	base := ScanConfig{Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.002}

	ts := timeseries.NewStore(timeseries.Config{})
	cfg := base
	cfg.Timeseries = ts
	par, err := RunScanParallelChecked(u, cfg, shards)
	if err != nil {
		t.Fatal(err)
	}

	var sumPooled, sumMiss int64
	for _, id := range ts.Shards() {
		samples, _ := ts.Series(id)
		var pooled, miss int64
		for i := range samples {
			pooled += samples[i].C("netsim.packets_pooled")
			miss += samples[i].C("netsim.pool_miss")
		}

		// Ground truth: the same slice run standalone. Shard slices are
		// independent simulations, so the parallel shard must have
		// counted exactly this — cross-shard bleed (the old shared-pool
		// failure mode) would show up as a mismatch here.
		solo := base
		solo.Shard = uint64(id)
		solo.Shards = shards
		res, err := RunScanChecked(u, solo)
		if err != nil {
			t.Fatal(err)
		}
		wantPooled := res.Metrics.Counters["netsim.packets_pooled"]
		wantMiss := res.Metrics.Counters["netsim.pool_miss"]
		if pooled != wantPooled || miss != wantMiss {
			t.Errorf("shard %d series: pooled %d / miss %d, standalone run counted %d / %d",
				id, pooled, miss, wantPooled, wantMiss)
		}
		if miss == 0 {
			t.Errorf("shard %d: pool_miss = 0 — a cold free list must miss at least once", id)
		}
		sumPooled += pooled
		sumMiss += miss
	}

	if got := par.Metrics.Counters["netsim.packets_pooled"]; got != sumPooled {
		t.Errorf("merged packets_pooled %d != per-shard series sum %d", got, sumPooled)
	}
	if got := par.Metrics.Counters["netsim.pool_miss"]; got != sumMiss {
		t.Errorf("merged pool_miss %d != per-shard series sum %d", got, sumMiss)
	}
	// hits + misses is the total GetPacket call count; a scan that sent
	// packets cannot have zero of it.
	if sumPooled+sumMiss == 0 {
		t.Error("pool counters all zero — the per-network pool is not reporting through the registry")
	}
}
