package experiments

import (
	"fmt"
	"strings"

	"iwscan/internal/analysis"
	"iwscan/internal/core"
)

// Figure4Result reproduces the Alexa-style popular-host scan: with
// hostnames available, success rates jump and IW 10 dominates.
type Figure4Result struct {
	ListSize   int
	HTTP       analysis.Overview
	TLS        analysis.Overview
	HTTPDist   map[int]float64
	TLSDist    map[int]float64
	HTTPCounts map[int]int
	TLSCounts  map[int]int
}

// Figure4 scans the universe's synthetic popular list over both
// protocols, presenting Host headers and SNI.
func (s *Suite) Figure4(listSize int) *Figure4Result {
	if listSize <= 0 {
		listSize = 10000 // scaled-down Alexa 1M
	}
	httpScan := RunPopularScan(s.Universe, listSize, core.StrategyHTTP, s.Seed+20)
	tlsScan := RunPopularScan(s.Universe, listSize, core.StrategyTLS, s.Seed+21)
	r := &Figure4Result{
		ListSize:   listSize,
		HTTP:       analysis.Table1(httpScan.Records),
		TLS:        analysis.Table1(tlsScan.Records),
		HTTPDist:   analysis.IWDistribution(httpScan.Records),
		TLSDist:    analysis.IWDistribution(tlsScan.Records),
		HTTPCounts: successCounts(httpScan.Records),
		TLSCounts:  successCounts(tlsScan.Records),
	}
	return r
}

func successCounts(records []analysis.Record) map[int]int {
	out := make(map[int]int)
	for i := range records {
		if records[i].Outcome == core.OutcomeSuccess {
			out[records[i].IW]++
		}
	}
	return out
}

// Render formats the figure against the paper's headline numbers.
func (r *Figure4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: popular-host (Alexa-style) scan of %d sites\n", r.ListSize)
	fmt.Fprintf(&b, "  success: HTTP %.1f%% (paper %.0f%%), TLS %.1f%% (paper %.0f%%)\n",
		100*r.HTTP.Success, 100*PaperFigure4.HTTPSuccess,
		100*r.TLS.Success, 100*PaperFigure4.TLSSuccess)
	fmt.Fprintf(&b, "  IW10 share: HTTP %.1f%% (paper >%.0f%%), TLS %.1f%% (paper %.0f%%)\n",
		100*r.HTTPDist[10], 100*PaperFigure4.HTTPIW10,
		100*r.TLSDist[10], 100*PaperFigure4.TLSIW10)
	fmt.Fprintf(&b, "  host counts by IW (log-scale axis in the paper):\n")
	fmt.Fprintf(&b, "    HTTP:")
	for _, iw := range sortedIWCounts(r.HTTPCounts) {
		fmt.Fprintf(&b, " IW%d:%d", iw, r.HTTPCounts[iw])
	}
	fmt.Fprintf(&b, "\n    TLS: ")
	for _, iw := range sortedIWCounts(r.TLSCounts) {
		fmt.Fprintf(&b, " IW%d:%d", iw, r.TLSCounts[iw])
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

func sortedIWCounts(m map[int]int) []int {
	fm := make(map[int]float64, len(m))
	for k, v := range m {
		fm[k] = float64(v)
	}
	return sortedIWs(fm)
}
