package experiments

import (
	"fmt"
	"math"
	"testing"

	"iwscan/internal/analysis"
	"iwscan/internal/core"
	"iwscan/internal/inet"
	"iwscan/internal/wire"
)

// testSuite runs the shared sampled scans once for the whole package.
var testSuite = NewSuite(2017, 0.05)

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want %.3f ± %.3f", name, got, want, tol)
	}
}

func TestTable1Shapes(t *testing.T) {
	r := testSuite.Table1()
	t.Log("\n" + r.Render())
	// HTTP: roughly half succeed, the gap is few-data, errors are small.
	near(t, "HTTP success", r.HTTP.Success, PaperTable1.HTTPSuccess, 0.07)
	near(t, "HTTP few-data", r.HTTP.FewData, PaperTable1.HTTPFewData, 0.07)
	if r.HTTP.Error > 0.04 {
		t.Errorf("HTTP error rate %.3f too high", r.HTTP.Error)
	}
	// TLS: much higher success than HTTP (the paper's key methodological
	// finding), small few-data share.
	near(t, "TLS success", r.TLS.Success, PaperTable1.TLSSuccess, 0.06)
	if r.TLS.Success <= r.HTTP.Success+0.15 {
		t.Errorf("TLS success (%.2f) should clearly exceed HTTP (%.2f)", r.TLS.Success, r.HTTP.Success)
	}
}

func TestFigure3Shapes(t *testing.T) {
	r := testSuite.Figure3()
	t.Log("\n" + r.Render())
	for _, tc := range []struct {
		name string
		got  map[int]float64
		want map[int]float64
		tol  float64
	}{
		{"HTTP", r.HTTPDist, PaperFigure3HTTP, 0.06},
		{"TLS", r.TLSDist, PaperFigure3TLS, 0.06},
	} {
		dom := 0.0
		for _, iw := range []int{1, 2, 4, 10} {
			near(t, fmt.Sprintf("%s IW%d", tc.name, iw), tc.got[iw], tc.want[iw], tc.tol)
			dom += tc.got[iw]
		}
		// "These IWs are present at more than 97% of all scanned hosts."
		if dom < 0.93 {
			t.Errorf("%s: IW 1/2/4/10 cover only %.1f%% of successes", tc.name, 100*dom)
		}
		// IW10 dominates everything else.
		if tc.got[10] < tc.got[1] || tc.got[10] < tc.got[2] || tc.got[10] < tc.got[4] {
			t.Errorf("%s: IW10 (%.2f) is not the dominant value", tc.name, tc.got[10])
		}
	}
	// TLS has relatively more IW4 than HTTP; HTTP more IW10 (paper §4.1).
	if r.TLSDist[4] <= r.HTTPDist[4] {
		t.Errorf("TLS IW4 share (%.2f) should exceed HTTP's (%.2f)", r.TLSDist[4], r.HTTPDist[4])
	}
	// Most dual-service hosts agree.
	if r.Agreement.Dual > 20 {
		frac := float64(r.Agreement.Agreeing) / float64(r.Agreement.Dual)
		if frac < 0.75 {
			t.Errorf("dual-host agreement %.2f, want most hosts agreeing", frac)
		}
	}
}

func TestFigure3SamplingIsEnough(t *testing.T) {
	r := testSuite.Figure3()
	// Every subsample reproduces the full distribution closely. The
	// paper's 1%-is-enough claim refers to 1% of ~24M successes; at this
	// test's scale a 1% subsample is a few dozen hosts, so the unit test
	// asserts the 10-50% subsamples and cmd/experiments exercises the
	// full-scale 1% result.
	for _, f := range SubsampleFractions[1:4] {
		dev := maxDevMap(r.HTTPDist, r.HTTPSubsamples[f])
		if dev > 0.05 {
			t.Errorf("HTTP %.0f%% subsample deviates %.3f from full distribution", 100*f, dev)
		}
	}
	// The 30-replicate 1% bands must straddle the full value for the
	// dominant IWs.
	for _, st := range r.HTTPReplicates {
		if st.FullFrac < 0.05 {
			continue
		}
		if st.FullFrac < st.Q01-0.03 || st.FullFrac > st.Q99+0.03 {
			t.Errorf("IW%d: full fraction %.3f outside 1%%-replicate band [%.3f, %.3f]",
				st.IW, st.FullFrac, st.Q01, st.Q99)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	r := testSuite.Table2()
	t.Log("\n" + r.Render())
	// HTTP: bound 7 dominates by far (default error pages on IW-10 hosts).
	maxB := 0
	for i := 2; i <= 10; i++ {
		if r.HTTP.Bound[i] > r.HTTP.Bound[maxB+1] {
			maxB = i - 1
		}
	}
	if r.HTTP.Bound[7] < 0.30 {
		t.Errorf("HTTP bound-7 share %.2f, want the dominant spike (paper 0.45)", r.HTTP.Bound[7])
	}
	for i := 1; i <= 10; i++ {
		if i != 7 && r.HTTP.Bound[i] > r.HTTP.Bound[7] {
			t.Errorf("HTTP bound %d (%.2f) exceeds bound 7 (%.2f)", i, r.HTTP.Bound[i], r.HTTP.Bound[7])
		}
	}
	// TLS: bound 1 dominates (alert-only hosts), NoData is large
	// (SNI-requiring hosts) — both far above the other bounds.
	if r.TLS.Bound[1] < 0.35 {
		t.Errorf("TLS bound-1 share %.2f, want dominant (paper 0.56)", r.TLS.Bound[1])
	}
	near(t, "TLS NoData", r.TLS.NoData, PaperTable2.TLSNoData, 0.08)
	if r.TLS.NoData < 2*r.HTTP.NoData {
		t.Errorf("TLS NoData (%.2f) should be several times HTTP's (%.2f)", r.TLS.NoData, r.HTTP.NoData)
	}
}

func TestFigure2Shapes(t *testing.T) {
	r := Figure2(7, 100000)
	t.Log("\n" + r.Render())
	near(t, "mean chain", r.Mean, PaperFigure2.MeanChain, 200)
	near(t, "IW10 coverage", r.CoverageMSS64[10], PaperFigure2.CoverageIW10, 0.03)
	near(t, "IW34 coverage", r.CoverageMSS64[34], PaperFigure2.CoverageIW34, 0.04)
	if r.Min < 36 || r.Max > 65000 {
		t.Errorf("chain bounds [%d, %d] outside the paper's [36, 65000]", r.Min, r.Max)
	}
	// MSS-1336 coverage collapses: a typical-MSS scan can verify almost
	// no host even at IW 4 — the motivation for announcing MSS 64.
	if r.CoverageMSS1336[4] > 0.35 {
		t.Errorf("IW4@MSS1336 coverage %.2f; should be far below the MSS-64 equivalents", r.CoverageMSS1336[4])
	}
}

func TestFigure4Shapes(t *testing.T) {
	r := testSuite.Figure4(1500)
	t.Log("\n" + r.Render())
	// Popular hosts: success rises markedly vs the whole-IPv4 HTTP scan,
	// and IW10 dominates at much higher share.
	full := testSuite.Table1()
	if r.HTTP.Success < full.HTTP.Success+0.10 {
		t.Errorf("popular HTTP success %.2f should clearly exceed IPv4-wide %.2f", r.HTTP.Success, full.HTTP.Success)
	}
	if r.HTTPDist[10] < 0.70 {
		t.Errorf("popular HTTP IW10 share %.2f, want >= 0.70 (paper >0.85)", r.HTTPDist[10])
	}
	if r.TLSDist[10] < 0.65 {
		t.Errorf("popular TLS IW10 share %.2f, want >= 0.65 (paper 0.80)", r.TLSDist[10])
	}
}

func TestFigure5Shapes(t *testing.T) {
	r := testSuite.Figure5()
	t.Log("\n" + r.Render())
	if len(r.HTTPClusters) < 2 {
		t.Fatalf("HTTP clustering found %d clusters, want >= 2", len(r.HTTPClusters))
	}
	// There must be an IW10-dominant cluster (content infrastructure)
	// and a non-IW10 cluster (legacy/access networks).
	doms := map[string]bool{}
	for _, c := range r.HTTPClusters {
		doms[analysis.DominantIWOfCluster(c)] = true
	}
	if !doms["IW10"] {
		t.Error("no IW10-dominant HTTP cluster")
	}
	if len(doms) < 2 {
		t.Errorf("all clusters share one dominant IW: %v", doms)
	}
	// Representatives include the paper's showcased networks.
	if len(r.Representatives) < 5 {
		t.Errorf("only %d representative ASes resolved", len(r.Representatives))
	}
}

func TestTable3Shapes(t *testing.T) {
	r := testSuite.Table3()
	t.Log("\n" + r.Render())
	find := func(rows []analysis.ServiceRow, name string) *analysis.ServiceRow {
		for i := range rows {
			if rows[i].Service == name {
				return &rows[i]
			}
		}
		return nil
	}
	// Akamai TLS: 100% IW4.
	if row := find(r.TLS, "Akamai"); row == nil || row.IW[4] < 0.95 {
		t.Errorf("Akamai TLS should be ~100%% IW4: %+v", row)
	}
	// Cloudflare: ~100% IW10 on both.
	if row := find(r.HTTP, "Cloudflare"); row != nil && row.IW[10] < 0.95 {
		t.Errorf("Cloudflare HTTP IW10 = %.2f", row.IW[10])
	}
	// EC2: IW10-dominant.
	if row := find(r.HTTP, "EC2"); row == nil || row.IW[10] < 0.85 {
		t.Errorf("EC2 HTTP should be ~95%% IW10: %+v", row)
	}
	// Azure: IW4 leads IW10 on both services.
	if row := find(r.TLS, "Azure"); row == nil || row.IW[4] < row.IW[10] {
		t.Errorf("Azure TLS should be IW4-dominant: %+v", row)
	}
	// Access networks: HTTP IW2-dominant, TLS IW4-dominant (§4.3).
	if row := find(r.HTTP, "Access NW"); row == nil || row.IW[2] < row.IW[10] || row.IW[2] < row.IW[4] {
		t.Errorf("Access NW HTTP should be IW2-dominant: %+v", row)
	}
	if row := find(r.TLS, "Access NW"); row == nil || row.IW[4] < row.IW[2] {
		t.Errorf("Access NW TLS should be IW4-dominant: %+v", row)
	}
}

func TestByteLimitShapes(t *testing.T) {
	r := testSuite.ByteLimit()
	t.Log("\n" + r.Render())
	// About 1% of measurable hosts are byte-limited; the 4 kB group is
	// roughly half of them.
	if r.Stats.Fraction() < 0.003 || r.Stats.Fraction() > 0.03 {
		t.Errorf("byte-limited fraction %.4f, want ~0.01", r.Stats.Fraction())
	}
	if r.Stats.ByteLimited > 0 {
		fourKB := float64(r.Stats.FourKB) / float64(r.Stats.ByteLimited)
		if fourKB < 0.3 || fourKB > 0.75 {
			t.Errorf("4kB share of byte-limited hosts %.2f, want ~0.5", fourKB)
		}
	}
	// GoDaddy's static IW48 exists and is MSS-independent (hence not
	// counted as byte-limited).
	if r.GoDaddy48HTTP < 0.10 || r.GoDaddy48HTTP > 0.30 {
		t.Errorf("GoDaddy HTTP IW48 share %.2f, want ~0.20", r.GoDaddy48HTTP)
	}
	if r.GoDaddy48TLS < 0.20 || r.GoDaddy48TLS > 0.45 {
		t.Errorf("GoDaddy TLS IW48 share %.2f, want ~0.33", r.GoDaddy48TLS)
	}
}

func TestEfficiencyShapes(t *testing.T) {
	r := Efficiency(inet.NewInternet2017(99), 99, 0.02)
	t.Log("\n" + r.Render())
	if r.PortScanHours <= 0 || r.IWScanHours <= 0 {
		t.Fatal("extrapolation failed")
	}
	overhead := r.IWScanHours/r.PortScanHours - 1
	// Paper: ~10% overhead. Anything in (0, 35%) preserves the claim
	// that full-connection probing stays near port-scan speed.
	if overhead <= 0 || overhead > 0.35 {
		t.Errorf("IW-scan overhead %.0f%%, want small positive (~10%%)", 100*overhead)
	}
}

func TestValidationGroundTruth(t *testing.T) {
	r := Validation(5)
	t.Log("\n" + r.Render())
	if !r.AllCorrect() {
		t.Error("ground-truth validation failed (see log)")
	}
	for _, pt := range r.Loss {
		if pt.Overestimate != 0 {
			t.Errorf("loss %.3f: %d overestimates; loss must never inflate the IW", pt.LossRate, pt.Overestimate)
		}
	}
	// Zero loss: every probe exact.
	if r.Loss[0].Underestimate != 0 || r.Loss[0].Inconclusive != 0 {
		t.Errorf("lossless sweep not perfect: %+v", r.Loss[0])
	}
	// The 3-probe maximum rule recovers most tail-loss runs at
	// moderate loss.
	for _, pt := range r.Loss {
		if pt.LossRate > 0 && pt.LossRate <= 0.01 {
			frac := float64(pt.AggregateExact) / float64(pt.AggregateRuns)
			if frac < 0.80 {
				t.Errorf("loss %.3f: aggregate exactness %.2f, want >= 0.80", pt.LossRate, frac)
			}
		}
	}
}

func TestPathMTUShapes(t *testing.T) {
	r := PathMTU(testSuite.Universe, 11, 1200)
	t.Log("\n" + r.Render())
	near(t, "MSS1336 support", r.MSS1336Frac, PaperFigure2.MSS1336Support, 0.03)
	near(t, "MSS1436 support", r.MSS1436Frac, PaperFigure2.MSS1436Support, 0.05)
	if r.Discovered < r.Probed*9/10 {
		t.Errorf("only %d of %d discoveries converged", r.Discovered, r.Probed)
	}
}

func TestPopularListProperties(t *testing.T) {
	list := testSuite.Universe.PopularList(300)
	if len(list) != 300 {
		t.Fatalf("list size %d", len(list))
	}
	seen := map[string]bool{}
	for _, ph := range list {
		if seen[ph.Name] {
			t.Fatalf("duplicate name %s", ph.Name)
		}
		seen[ph.Name] = true
		spec := testSuite.Universe.HostAt(ph.Addr)
		if spec == nil || !spec.HTTPLive {
			t.Fatalf("popular host %s at %s not live on HTTP", ph.Name, ph.Addr)
		}
	}
}

func TestScanDeterminism(t *testing.T) {
	u := inet.NewInternet2017(77)
	a := RunScan(u, ScanConfig{Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.002})
	b := RunScan(u, ScanConfig{Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.002})
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.Addr != rb.Addr || ra.Outcome != rb.Outcome || ra.IW != rb.IW {
			t.Fatalf("record %d differs: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestAgreementJoin(t *testing.T) {
	http := []analysis.Record{
		{Addr: 1, Outcome: core.OutcomeSuccess, IW: 10},
		{Addr: 2, Outcome: core.OutcomeSuccess, IW: 4},
		{Addr: 3, Outcome: core.OutcomeFewData},
	}
	tls := []analysis.Record{
		{Addr: 1, Outcome: core.OutcomeSuccess, IW: 10},
		{Addr: 2, Outcome: core.OutcomeSuccess, IW: 10},
		{Addr: 3, Outcome: core.OutcomeSuccess, IW: 2},
	}
	got := analysis.Agreement(http, tls)
	if got.Dual != 2 || got.Agreeing != 1 {
		t.Fatalf("agreement = %+v", got)
	}
}

func TestAkamaiPerServiceShapes(t *testing.T) {
	r := AkamaiServices(testSuite.Universe, 3, 250)
	t.Log("\n" + r.Render())
	// Blind IP probing measures the IW-4 edges from their error pages,
	// but hostnames unlock the rest (the larger custom-IW services).
	if r.ArmedSuccess < r.BlindSuccess+0.15 {
		t.Errorf("hostname-armed success %.2f should far exceed blind %.2f", r.ArmedSuccess, r.BlindSuccess)
	}
	// Per-service customization: at least three distinct IW values, and
	// the paper's showcased 16 and 32 among them.
	if len(r.IWValues) < 3 {
		t.Errorf("only %d distinct IW values found: %v", len(r.IWValues), r.IWValues)
	}
	if r.IWValues[16] == 0 || r.IWValues[32] == 0 {
		t.Errorf("custom IW 16/32 services missing: %v", r.IWValues)
	}
}

func TestMotivationShapes(t *testing.T) {
	r := Motivation(3)
	t.Log("\n" + r.Render())
	// FCT decreases monotonically with IW, and IW 1 -> IW 10 saves
	// multiple RTTs on a 15-segment page.
	for i := 1; i < len(r.FCT); i++ {
		if r.FCT[i].FCT > r.FCT[i-1].FCT {
			t.Errorf("FCT rose from IW %d to IW %d", r.FCT[i-1].IW, r.FCT[i].IW)
		}
	}
	var fct1, fct10 float64
	for _, p := range r.FCT {
		switch p.IW {
		case 1:
			fct1 = p.RTTs
		case 10:
			fct10 = p.RTTs
		}
	}
	if fct1-fct10 < 2 {
		t.Errorf("IW1 (%.1f RTTs) vs IW10 (%.1f RTTs): want >= 2 RTTs saved", fct1, fct10)
	}
	// At the constrained link, small IWs pass cleanly while large IWs
	// overflow the queue.
	drops := map[int]int64{}
	for _, p := range r.Burst {
		drops[p.IW] = p.QueueDrops
		if !p.Complete {
			t.Errorf("IW %d download never completed", p.IW)
		}
	}
	if drops[4] != 0 {
		t.Errorf("IW 4 should fit the queue, got %d drops", drops[4])
	}
	if drops[40] == 0 && drops[64] == 0 {
		t.Error("aggressive IWs should overflow the shallow buffer")
	}
}

func TestParallelScanEqualsSharded(t *testing.T) {
	u := inet.NewInternet2017(55)
	cfg := ScanConfig{Seed: 9, Strategy: core.StrategyHTTP, SampleFraction: 0.004, MSSList: []int{64}, Repeats: 1}
	par := RunScanParallel(u, cfg, 4)

	// The union of the four shards run sequentially must match.
	var seq []analysis.Record
	for i := 0; i < 4; i++ {
		c := cfg
		c.Shard, c.Shards = uint64(i), 4
		seq = append(seq, RunScan(u, c).Records...)
	}
	if len(par.Records) != len(seq) {
		t.Fatalf("parallel %d records, sequential %d", len(par.Records), len(seq))
	}
	bySeq := map[wire.Addr]analysis.Record{}
	for _, r := range seq {
		bySeq[r.Addr] = r
	}
	for _, r := range par.Records {
		want, ok := bySeq[r.Addr]
		if !ok {
			t.Fatalf("parallel scanned %s, sequential did not", r.Addr)
		}
		if r.Outcome != want.Outcome || r.IW != want.IW {
			t.Fatalf("%s differs: parallel %s/%d vs sequential %s/%d",
				r.Addr, r.Outcome, r.IW, want.Outcome, want.IW)
		}
	}
	// Records are sorted for deterministic output.
	for i := 1; i < len(par.Records); i++ {
		if par.Records[i].Addr < par.Records[i-1].Addr {
			t.Fatal("parallel records not sorted")
		}
	}
}

// TestParallelMetricsMergeEqualsUnsharded: the merged per-shard
// registry snapshots must reproduce the unsharded run's counter totals
// and histogram observation counts exactly — probe behavior is
// per-target deterministic, so partitioning the permutation cannot
// change what is counted, only when.
func TestParallelMetricsMergeEqualsUnsharded(t *testing.T) {
	u := inet.NewInternet2017(55)
	cfg := ScanConfig{Seed: 9, Strategy: core.StrategyHTTP, SampleFraction: 0.004, MSSList: []int{64}, Repeats: 1}
	par := RunScanParallel(u, cfg, 4)
	single := RunScan(u, cfg)

	for _, name := range []string{
		"engine.launched", "engine.completed", "engine.skipped",
		"core.probes_started", "core.synacks", "core.retransmits", "core.verify_releases",
		"netsim.packets_sent", "netsim.packets_delivered", "netsim.bytes_sent",
	} {
		if got, want := par.Metrics.Counters[name], single.Metrics.Counters[name]; got != want {
			t.Errorf("counter %s: merged %d, unsharded %d", name, got, want)
		}
	}
	// Outcome taxa merge too: every counter present in one snapshot must
	// total the same in the other. The pool hit/miss split is the one
	// legitimate exception — four shards warm four free lists from cold,
	// so misses shift relative to one warm list — but the sum is exactly
	// the number of GetPacket calls, which partitioning cannot change.
	for name, want := range single.Metrics.Counters {
		if name == "netsim.packets_pooled" || name == "netsim.pool_miss" {
			continue
		}
		if got := par.Metrics.Counters[name]; got != want {
			t.Errorf("counter %s: merged %d, unsharded %d", name, got, want)
		}
	}
	parPool := par.Metrics.Counters["netsim.packets_pooled"] + par.Metrics.Counters["netsim.pool_miss"]
	singlePool := single.Metrics.Counters["netsim.packets_pooled"] + single.Metrics.Counters["netsim.pool_miss"]
	if parPool != singlePool {
		t.Errorf("pool gets (hits+misses): merged %d, unsharded %d", parPool, singlePool)
	}
	// Histogram observation counts match even though the observed values
	// (jitter-dependent timings) may differ between runs.
	for _, name := range []string{"core.rtt_ns", "core.probe.lifetime_ns", "engine.probe_duration_ns"} {
		if got, want := par.Metrics.Histograms[name].Count, single.Metrics.Histograms[name].Count; got != want {
			t.Errorf("histogram %s: merged count %d, unsharded %d", name, got, want)
		}
	}
}

func TestParallelScanSingleShardFallback(t *testing.T) {
	u := inet.NewInternet2017(55)
	cfg := ScanConfig{Seed: 9, Strategy: core.StrategyHTTP, SampleFraction: 0.002, MSSList: []int{64}, Repeats: 1}
	a := RunScanParallel(u, cfg, 1)
	b := RunScan(u, cfg)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("fallback path diverged: %d vs %d", len(a.Records), len(b.Records))
	}
}

// TestAddressSpaceSamplingMatchesResultSubsampling reproduces §4.1's
// second sampling claim: drawing a random sample of the *probeable
// address space* up front (no prior knowledge of which hosts are live)
// yields the same IW distribution as subsampling a full scan's results.
func TestAddressSpaceSamplingMatchesResultSubsampling(t *testing.T) {
	full := testSuite.HTTPScan().Records
	fullDist := IWDistributionOf(full)

	pre := RunScan(testSuite.Universe, ScanConfig{
		Seed: 777, Strategy: core.StrategyHTTP, SampleFraction: testSuite.Sample * 0.3,
	})
	preDist := IWDistributionOf(pre.Records)

	for _, iw := range []int{1, 2, 4, 10} {
		d := fullDist[iw] - preDist[iw]
		if d < 0 {
			d = -d
		}
		if d > 0.06 {
			t.Errorf("IW %d: address-space sample %.3f vs full %.3f", iw, preDist[iw], fullDist[iw])
		}
	}
}

// IWDistributionOf is a thin alias keeping the test readable.
func IWDistributionOf(records []analysis.Record) map[int]float64 {
	return analysis.IWDistribution(records)
}

func TestTrendShapes(t *testing.T) {
	r := Trend(4, 0.04)
	t.Log("\n" + r.Render())
	// 2005: IW 2 dominates among successes, IW 10 absent.
	if r.Dist2005[2] < r.Dist2005[1] || r.Dist2005[2] < r.Dist2005[4] {
		t.Errorf("2005 should be IW2-dominant: %v", r.Dist2005)
	}
	if r.Dist2005[10] > 0.01 {
		t.Errorf("IW 10 share in 2005 = %.3f, should be ~0", r.Dist2005[10])
	}
	// IW 10 is effectively new; IW 4's growth exceeds IW 1's and IW 2's
	// (the paper: 4 and 10 gained the highest relative growth).
	if g, ok := r.Growth[10]; ok && g >= 0 && g < 3 {
		t.Errorf("IW 10 growth %.2f, want new or large", g)
	}
	if r.Growth[4] <= r.Growth[2] || r.Growth[4] <= r.Growth[1] {
		t.Errorf("IW 4 growth (%.2f) should exceed IW 1 (%.2f) and IW 2 (%.2f)",
			r.Growth[4], r.Growth[1], r.Growth[2])
	}
}
