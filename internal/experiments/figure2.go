package experiments

import (
	"fmt"
	"strings"

	"iwscan/internal/stats"
	"iwscan/internal/tlssim"
)

// Figure2Result reproduces the certificate-chain-length CCDF and the
// IW-coverage thresholds of Figure 2.
type Figure2Result struct {
	N    int
	Mean float64
	Min  int
	Max  int
	CCDF *stats.CCDF
	// CoverageMSS64[iw] = fraction of hosts whose chain fills iw
	// segments of 64 bytes; CoverageMSS1336 likewise for a typical path
	// MSS of 1336 bytes.
	CoverageMSS64   map[int]float64
	CoverageMSS1336 map[int]float64
}

// Figure2 samples the chain-length model at censys scale (scaled down)
// and evaluates the coverage thresholds the paper reports.
func Figure2(seed uint64, n int) *Figure2Result {
	if n <= 0 {
		n = 365000 // 1% of the censys data set's 36.5M hosts
	}
	rng := stats.NewRNG(seed)
	var d tlssim.ChainLenDist
	samples := make([]float64, n)
	minv, maxv := 1<<31, 0
	for i := range samples {
		v := d.SampleHash(rng.Uint64())
		samples[i] = float64(v)
		if v < minv {
			minv = v
		}
		if v > maxv {
			maxv = v
		}
	}
	ccdf := stats.NewCCDF(samples)
	r := &Figure2Result{
		N: n, Mean: ccdf.Mean(), Min: minv, Max: maxv, CCDF: ccdf,
		CoverageMSS64:   make(map[int]float64),
		CoverageMSS1336: make(map[int]float64),
	}
	for _, iw := range []int{1, 2, 4, 10, 34} {
		r.CoverageMSS64[iw] = ccdf.At(float64(64 * iw))
	}
	for _, iw := range []int{1, 2, 4} {
		r.CoverageMSS1336[iw] = ccdf.At(float64(1336 * iw))
	}
	return r
}

// Render formats the figure against the paper's reference numbers.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: certificate chain length CCDF (%d sampled hosts)\n", r.N)
	fmt.Fprintf(&b, "  mean %.0f B (paper %.0f), min %d (paper %d), max %d (paper %d)\n",
		r.Mean, PaperFigure2.MeanChain, r.Min, PaperFigure2.MinChain, r.Max, PaperFigure2.MaxChain)
	fmt.Fprintf(&b, "  CCDF at IW*MSS thresholds, MSS 64:\n")
	for _, iw := range []int{1, 2, 4, 10, 34} {
		note := ""
		switch iw {
		case 10:
			note = fmt.Sprintf("  (paper: >%.0f%%)", 100*PaperFigure2.CoverageIW10)
		case 34:
			note = fmt.Sprintf("  (paper: ~%.0f%%)", 100*PaperFigure2.CoverageIW34)
		}
		fmt.Fprintf(&b, "    P(chain >= %5d B) = %5.1f%%%s\n", 64*iw, 100*r.CoverageMSS64[iw], note)
	}
	fmt.Fprintf(&b, "  CCDF at IW*MSS thresholds, MSS 1336:\n")
	for _, iw := range []int{1, 2, 4} {
		fmt.Fprintf(&b, "    P(chain >= %5d B) = %5.1f%%\n", 1336*iw, 100*r.CoverageMSS1336[iw])
	}
	return b.String()
}
