package experiments

import (
	"fmt"
	"sort"
	"strings"

	"iwscan/internal/analysis"
	"iwscan/internal/core"
	"iwscan/internal/inet"
)

// TrendResult reproduces the paper's comparison against Medina et al.'s
// 2005 measurement (§2, §4.1): scanning a 2005-era population next to
// the 2017 one shows that "IWs of 4 and 10 segments have gained the
// highest relative growth".
type TrendResult struct {
	Dist2005 map[int]float64
	Dist2017 map[int]float64
	// Growth is the 2017/2005 share ratio for every IW seen in either
	// year (capped for divide-by-zero newcomers, which report as +Inf
	// conceptually; we mark them with Growth = -1).
	Growth map[int]float64
}

// Trend runs HTTP scans of both populations and compares IW shares.
func Trend(seed uint64, sample float64) *TrendResult {
	if sample <= 0 || sample > 1 {
		sample = 0.1
	}
	u05 := inet.NewInternet2005(seed)
	u17 := inet.NewInternet2017(seed)
	r05 := RunScan(u05, ScanConfig{Seed: seed, Strategy: core.StrategyHTTP, SampleFraction: sample * 3})
	r17 := RunScan(u17, ScanConfig{Seed: seed, Strategy: core.StrategyHTTP, SampleFraction: sample})
	t := &TrendResult{
		Dist2005: analysis.IWDistribution(r05.Records),
		Dist2017: analysis.IWDistribution(r17.Records),
		Growth:   make(map[int]float64),
	}
	for iw, f17 := range t.Dist2017 {
		if f17 < 0.001 {
			continue
		}
		f05 := t.Dist2005[iw]
		if f05 == 0 {
			t.Growth[iw] = -1 // did not exist in 2005
			continue
		}
		t.Growth[iw] = f17 / f05
	}
	return t
}

// Render formats the 2005-vs-2017 comparison.
func (t *TrendResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§2/§4.1 trend: IW shares, 2005-era population (Medina et al.) vs 2017\n")
	fmt.Fprintf(&b, "  2005: %s\n", analysis.FormatDistribution(filterDominant(t.Dist2005, 0.005)))
	fmt.Fprintf(&b, "  2017: %s\n", analysis.FormatDistribution(filterDominant(t.Dist2017, 0.005)))
	var iws []int
	for iw := range t.Growth {
		iws = append(iws, iw)
	}
	sort.Ints(iws)
	fmt.Fprintf(&b, "  relative growth (2017 share / 2005 share):\n")
	for _, iw := range iws {
		if t.Dist2017[iw] < 0.01 {
			continue
		}
		if g := t.Growth[iw]; g < 0 {
			fmt.Fprintf(&b, "    IW %-3d  new since 2005 (share now %.1f%%)\n", iw, 100*t.Dist2017[iw])
		} else {
			fmt.Fprintf(&b, "    IW %-3d  x%.2f\n", iw, g)
		}
	}
	fmt.Fprintf(&b, "  (paper: \"IWs of 4 and 10 segments have gained the highest relative growth\")\n")
	return b.String()
}
