// Package experiments drives the end-to-end reproductions of the
// paper's tables and figures: it wires a simulated Internet (inet), the
// scan engine (scanner) and the IW prober (core) together and feeds the
// results to the analysis pipeline. Both the cmd/experiments binary and
// the benchmark suite run these entry points.
package experiments

import (
	"io"
	"time"

	"iwscan/internal/analysis"
	"iwscan/internal/core"
	"iwscan/internal/inet"
	"iwscan/internal/metrics"
	"iwscan/internal/netsim"
	"iwscan/internal/scanner"
	"iwscan/internal/wire"
)

// ScannerAddr is the scanner's source address, outside every modelled
// AS (RFC 2544 benchmark space).
var ScannerAddr = wire.MustParseAddr("198.18.0.1")

// ScanConfig parameterizes one scan run.
type ScanConfig struct {
	Seed           uint64
	Strategy       core.Strategy
	SampleFraction float64 // fraction of the address space to probe (1 = all)
	Rate           float64 // target launches per second of virtual time
	MaxOutstanding int
	Loss           float64 // per-packet network loss probability
	MSSList        []int   // announced MSS sequence (default 64, 128)
	Repeats        int     // probes per MSS (default 3)
	// Ablation knobs (§3.2 fallbacks).
	NoRedirectFollow bool
	NoBloat          bool
	// Trace, when set, is installed as a network filter (e.g. a
	// trace.Recorder's Filter for packet capture).
	Trace netsim.Filter
	// Shard/Shards split the scan ZMap-style (0/0 = unsharded).
	Shard, Shards uint64
	// Blacklist excludes prefixes from probing.
	Blacklist []wire.Prefix
	// StatusInterval, when positive together with StatusOut, prints a
	// ZMap-style one-line progress report to StatusOut every interval of
	// wall time while the scan runs.
	StatusInterval time.Duration
	StatusOut      io.Writer
	// StatusLabel prefixes each progress line (e.g. a shard tag).
	StatusLabel string
}

func (c *ScanConfig) withDefaults() ScanConfig {
	out := *c
	if out.SampleFraction == 0 {
		out.SampleFraction = 1
	}
	if out.Rate == 0 {
		out.Rate = 10000
	}
	if out.MaxOutstanding == 0 {
		out.MaxOutstanding = 20000
	}
	return out
}

// ScanResult is a completed scan with everything the analyses need.
type ScanResult struct {
	Records     []analysis.Record
	Engine      scanner.Stats
	Net         netsim.Counters
	Scan        core.Counters
	VirtualTime netsim.Time
	// Metrics is the final registry snapshot covering every layer of the
	// run (netsim, core, engine); for parallel runs it is the exact
	// merge of the per-shard snapshots.
	Metrics metrics.Snapshot
}

// RunScan scans the universe's whole announced space with one strategy.
func RunScan(u *inet.Universe, cfg ScanConfig) *ScanResult {
	cfg = cfg.withDefaults()
	n := netsim.New(cfg.Seed)
	n.SetPath(netsim.PathParams{Delay: 10 * netsim.Millisecond, Jitter: 2 * netsim.Millisecond, Loss: cfg.Loss})
	n.SetFactory(u)
	if cfg.Trace != nil {
		n.AddFilter(cfg.Trace)
	}
	sc := core.NewScanner(n, ScannerAddr, core.Config{Seed: cfg.Seed})

	space := scanner.NewSpaceFromPrefixes(u.Prefixes())
	space.AddBlacklist(cfg.Blacklist...)
	res := &ScanResult{}
	launch := func(addr wire.Addr, done func()) {
		tc := core.TargetConfig{
			Strategy: cfg.Strategy, MSSList: cfg.MSSList, Repeats: cfg.Repeats,
			NoRedirectFollow: cfg.NoRedirectFollow, NoBloat: cfg.NoBloat,
		}
		sc.ProbeTarget(addr, tc, func(tr *core.TargetResult) {
			res.Records = append(res.Records, enrich(u, tr))
			done()
		})
	}
	eng := scanner.NewEngine(n, space, scanner.Config{
		Rate:           cfg.Rate,
		MaxOutstanding: cfg.MaxOutstanding,
		Seed:           cfg.Seed,
		SampleFraction: cfg.SampleFraction,
		Shard:          cfg.Shard,
		Shards:         cfg.Shards,
	}, launch)
	var reporter *statusReporter
	eng.OnFinish(func(s scanner.Stats) {
		res.Engine = s
		if reporter != nil {
			reporter.stop()
		}
	})
	if cfg.StatusInterval > 0 && cfg.StatusOut != nil {
		reporter = startStatusReporter(cfg.StatusOut, n, eng, cfg.StatusLabel, cfg.StatusInterval)
	}
	eng.Start()
	n.RunUntilIdle()
	res.Net = n.Stats()
	res.Scan = sc.Stats()
	res.VirtualTime = res.Engine.Duration()
	res.Metrics = n.Metrics().Snapshot()
	return res
}

// enrich attaches AS and rDNS metadata to a target result.
func enrich(u *inet.Universe, tr *core.TargetResult) analysis.Record {
	r := analysis.FromTarget(tr)
	if as := u.ASOf(tr.Addr); as != nil {
		r.ASN = as.ASN
		r.ASName = as.Name
	}
	r.RDNS = u.ReverseDNS(tr.Addr)
	return r
}

// RunPopularScan probes the universe's synthetic Alexa-style list with
// hostnames available (Host header and SNI), as §4.1's popular-host scan
// does.
func RunPopularScan(u *inet.Universe, n int, strategy core.Strategy, seed uint64) *ScanResult {
	net := netsim.New(seed)
	net.SetPath(netsim.PathParams{Delay: 10 * netsim.Millisecond, Jitter: 2 * netsim.Millisecond})
	net.SetFactory(u)
	sc := core.NewScanner(net, ScannerAddr, core.Config{Seed: seed})

	list := u.PopularList(n)
	res := &ScanResult{}
	addrs := make([]wire.Addr, len(list))
	names := make(map[wire.Addr]string, len(list))
	for i, ph := range list {
		addrs[i] = ph.Addr
		names[ph.Addr] = ph.Name
	}
	space := scanner.NewSpaceFromList(addrs)
	launch := func(addr wire.Addr, done func()) {
		tc := core.TargetConfig{Strategy: strategy, SNI: names[addr]}
		sc.ProbeTarget(addr, tc, func(tr *core.TargetResult) {
			res.Records = append(res.Records, enrich(u, tr))
			done()
		})
	}
	eng := scanner.NewEngine(net, space, scanner.Config{Rate: 10000, MaxOutstanding: 20000, Seed: seed}, launch)
	eng.OnFinish(func(s scanner.Stats) { res.Engine = s })
	eng.Start()
	net.RunUntilIdle()
	res.Net = net.Stats()
	res.Scan = sc.Stats()
	res.VirtualTime = res.Engine.Duration()
	res.Metrics = net.Metrics().Snapshot()
	return res
}
