// Package experiments drives the end-to-end reproductions of the
// paper's tables and figures: it wires a simulated Internet (inet), the
// scan engine (scanner) and the IW prober (core) together and feeds the
// results to the analysis pipeline. Both the cmd/experiments binary and
// the benchmark suite run these entry points.
package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"iwscan/internal/analysis"
	"iwscan/internal/checkpoint"
	"iwscan/internal/core"
	"iwscan/internal/flight"
	"iwscan/internal/inet"
	"iwscan/internal/metrics"
	"iwscan/internal/netsim"
	"iwscan/internal/output"
	"iwscan/internal/scanner"
	"iwscan/internal/timeseries"
	"iwscan/internal/trace"
	"iwscan/internal/wire"
)

// ScannerAddr is the scanner's source address, outside every modelled
// AS (RFC 2544 benchmark space).
var ScannerAddr = wire.MustParseAddr("198.18.0.1")

// ScanConfig parameterizes one scan run.
type ScanConfig struct {
	Seed           uint64
	Strategy       core.Strategy
	SampleFraction float64 // fraction of the address space to probe (1 = all)
	Rate           float64 // target launches per second of virtual time
	MaxOutstanding int
	Loss           float64 // per-packet network loss probability
	MSSList        []int   // announced MSS sequence (default 64, 128)
	Repeats        int     // probes per MSS (default 3)
	// MaxRetries re-launches probes whose handshake never completed
	// (outcome unreachable), up to this many extra attempts each, before
	// the scan is declared done. 0 disables retries.
	MaxRetries int
	// Ablation knobs (§3.2 fallbacks).
	NoRedirectFollow bool
	NoBloat          bool
	// Trace, when set, is installed as a network filter (e.g. a
	// trace.Recorder's Filter for packet capture).
	Trace netsim.Filter
	// PcapRecorder, when set, captures packets like Trace but lets the
	// run bind the recorder's drop counter into its metrics registry
	// (the registry is created inside the run, so a bare Trace filter
	// cannot reach it).
	PcapRecorder *trace.Recorder
	// Flight, when set, attaches a per-probe flight recorder: it
	// becomes the network's observer and the scanner's estimator sink,
	// and every probe begins/ends a journal keyed by target address.
	// Observation never draws from the simulation RNG, so golden
	// outputs stay byte-identical with the recorder enabled. Its
	// trigger configuration is part of the checkpoint fingerprint.
	Flight *flight.Recorder
	// FlightClassify maps a completed record to the verdict name the
	// flight recorder's triggers match against (plus a free-form
	// detail line). Unset, the record's own outcome taxon is used —
	// wiring in the validate oracle is the caller's job because only
	// the caller knows the ground truth universe.
	FlightClassify func(*analysis.Record) (verdict, detail string)
	// Debug, when set, gets this run's registry and flight recorder
	// attached so a live HTTP endpoint can serve them mid-scan.
	Debug *flight.DebugServer
	// Path, when set, replaces the default path parameters (10 ms delay,
	// 2 ms jitter, Loss) wholesale — the adversity-sweep hook that lets
	// the validation harness dial in reordering, duplication and jitter
	// on top of loss. When Path is set the Loss field is ignored.
	Path *netsim.PathParams
	// Filters are additional packet filters installed before the scan
	// starts (deterministic impairments such as netsim.TailLossFilter).
	// Stateful filters must not be shared across parallel shards: each
	// shard runs its own simulation concurrently.
	Filters []netsim.Filter
	// FilterFactories build additional filters inside each run, one
	// fresh instance per simulation — the safe way to install stateful
	// impairments (TailLossFilter keeps per-flow state) under
	// RunScanParallel, where cfg.Filters would be shared across
	// concurrently running shards.
	FilterFactories []func() netsim.Filter
	// Timeseries, when set, attaches a telemetry sampler to the run: the
	// store's configured virtual-time cadence snapshots the registry into
	// per-shard interval deltas, feeds the anomaly detector, and serves
	// the debug server's /timeseries and /dash endpoints. Sampling is
	// non-perturbing (no RNG draws, read-only callbacks), so golden
	// outputs stay byte-identical with telemetry armed.
	Timeseries *timeseries.Store
	// Shard/Shards split the scan ZMap-style (0/0 = unsharded).
	Shard, Shards uint64
	// Blacklist excludes prefixes from probing.
	Blacklist []wire.Prefix
	// Smart, when set, enables topology-aware iteration: the engine
	// visits prefixes the plan marks hot first and skips prefixes it
	// prunes (internal/prefixtree compiles plans from trained
	// responsiveness models). The plan is identity-defining — its
	// fingerprint key, which embeds the model hash, joins the checkpoint
	// fingerprint, so -resume refuses a retrained model with a
	// field-level MismatchError. Plans are immutable, so one plan is
	// safe to share across parallel shards.
	Smart scanner.SmartPlan
	// Hitlist, when non-empty, replaces the universe's announced
	// prefixes as the target space with this explicit address list
	// (typically the responsive hosts of a prior scan, see
	// prefixtree.Hitlist). The blacklist still applies. The list is
	// identity-defining and joins the checkpoint fingerprint by content
	// hash.
	Hitlist []wire.Addr
	// StatusInterval, when positive together with StatusOut, prints a
	// ZMap-style one-line progress report to StatusOut every interval of
	// wall time while the scan runs.
	StatusInterval time.Duration
	StatusOut      io.Writer
	// StatusLabel prefixes each progress line (e.g. a shard tag).
	StatusLabel string

	// Sink, when set, receives records as they complete — in permutation
	// order, one at a time — so the scan holds O(buffer) records in
	// memory instead of accumulating all of them. With Sink nil the
	// historical in-memory path is used and ScanResult.Records is
	// populated.
	Sink output.Sink
	// KeepRecords additionally retains records in ScanResult.Records
	// when a Sink is set (for summaries over streamed scans; costs
	// O(targets) memory again).
	KeepRecords bool
	// CheckpointPath enables periodic, atomically written scan-state
	// checkpoints to this file. A checkpoint's cursor is consistent with
	// the Sink contents: everything below it has been flushed.
	CheckpointPath string
	// CheckpointInterval is the virtual-time period between checkpoints
	// (default 10 virtual seconds).
	CheckpointInterval netsim.Time
	// Resume, when set, validates the checkpoint against this scan's
	// configuration fingerprint and continues from its cursor instead of
	// the beginning of the permutation.
	Resume *checkpoint.State
	// TimeLimit stops the scan after this much virtual time, leaving a
	// final consistent checkpoint (when CheckpointPath is set) and
	// ScanResult.Incomplete true. 0 runs to completion.
	TimeLimit netsim.Time
}

func (c *ScanConfig) withDefaults() ScanConfig {
	out := *c
	if out.SampleFraction == 0 {
		out.SampleFraction = 1
	}
	if out.Rate == 0 {
		out.Rate = 10000
	}
	if out.MaxOutstanding == 0 {
		out.MaxOutstanding = 20000
	}
	if out.Shards == 0 {
		out.Shards = 1
	}
	out.Shard %= out.Shards
	return out
}

// configFields names the identity-defining parts of the configuration:
// anything that changes which targets are probed, in what order, or
// what record a target produces. Rate, concurrency, status reporting
// and output plumbing are deliberately excluded — a resumed scan may
// change those freely. The names are persisted into checkpoints so a
// resume rejection can report exactly which fields differ.
func (c *ScanConfig) configFields(universeSeed uint64, spaceSize uint64) []checkpoint.Field {
	path := netsim.PathParams{}
	if c.Path != nil {
		path = *c.Path
	}
	return checkpoint.FieldList(
		"program", "iwscan",
		"universe_seed", universeSeed,
		"space_size", spaceSize,
		"seed", c.Seed,
		"strategy", int(c.Strategy),
		"sample_fraction", c.SampleFraction,
		"loss", c.Loss,
		"mss_list", c.MSSList,
		"repeats", c.Repeats,
		"max_retries", c.MaxRetries,
		"no_redirect_follow", c.NoRedirectFollow,
		"no_bloat", c.NoBloat,
		"shard", c.Shard,
		"shards", c.Shards,
		"blacklist", c.Blacklist,
		"path_set", c.Path != nil,
		"path", path,
		"flight_triggers", c.Flight.FingerprintKey(),
		"smart", smartKey(c.Smart),
		"hitlist", hitlistKey(c.Hitlist),
	)
}

// smartKey renders the smart plan's fingerprint contribution ("" for a
// plain sweep).
func smartKey(p scanner.SmartPlan) string {
	if p == nil {
		return ""
	}
	return p.FingerprintKey()
}

// hitlistKey renders a hitlist's fingerprint contribution: its length
// plus a content hash ("" for a prefix-space scan).
func hitlistKey(addrs []wire.Addr) string {
	if len(addrs) == 0 {
		return ""
	}
	h := fnv.New64a()
	var buf [4]byte
	for _, a := range addrs {
		binary.LittleEndian.PutUint32(buf[:], uint32(a))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%d:%016x", len(addrs), h.Sum64())
}

// space materializes the configuration's target space against u: the
// universe's announced prefixes, or the explicit hitlist when set,
// minus the blacklist either way.
func (c *ScanConfig) space(u *inet.Universe) *scanner.TargetSpace {
	var space *scanner.TargetSpace
	if len(c.Hitlist) > 0 {
		space = scanner.NewSpaceFromList(c.Hitlist)
	} else {
		space = scanner.NewSpaceFromPrefixes(u.Prefixes())
	}
	space.AddBlacklist(c.Blacklist...)
	return space
}

// ConfigFields returns the named fingerprint fields this configuration
// would produce against u — the same fields RunScanChecked embeds in
// checkpoints and validates resumes against. The jobs control plane
// uses it to build checkpoint states of its own at slice boundaries.
func (c *ScanConfig) ConfigFields(u *inet.Universe) []checkpoint.Field {
	cfg := c.withDefaults()
	return cfg.configFields(u.Seed, cfg.space(u).Size())
}

// ScanResult is a completed scan with everything the analyses need.
type ScanResult struct {
	Records     []analysis.Record
	Engine      scanner.Stats
	Net         netsim.Counters
	Scan        core.Counters
	VirtualTime netsim.Time
	// Metrics is the final registry snapshot covering every layer of the
	// run (netsim, core, engine); for parallel runs it is the exact
	// merge of the per-shard snapshots.
	Metrics metrics.Snapshot
	// Incomplete marks a scan stopped by TimeLimit before finishing.
	Incomplete bool
	// Cursor is the engine's final consistent frontier (useful for
	// inspecting what a checkpoint at this moment would contain).
	Cursor *scanner.Cursor
	// MaxBuffered is the high-water mark of records held in the
	// streaming pipeline's reorder buffer — the O(buffer) figure that
	// replaces the old O(targets) accumulation when a Sink is used.
	MaxBuffered int
	// ShardEngines holds the per-shard engine stats of a parallel run
	// (in shard order; empty for serial scans). Engine above is their
	// sum — these are the inputs to per-shard rate and scaling analyses.
	ShardEngines []scanner.Stats
}

// RunScan scans the universe's whole announced space with one strategy.
// It panics on configuration errors; callers using checkpoint/resume or
// sinks should prefer RunScanChecked.
func RunScan(u *inet.Universe, cfg ScanConfig) *ScanResult {
	res, err := RunScanChecked(u, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// RunScanChecked is RunScan with error reporting: resume-fingerprint
// mismatches, checkpoint I/O failures and sink write failures surface
// as errors instead of panics.
func RunScanChecked(u *inet.Universe, cfg ScanConfig) (*ScanResult, error) {
	cfg = cfg.withDefaults()
	n := netsim.New(cfg.Seed)
	if cfg.Path != nil {
		n.SetPath(*cfg.Path)
	} else {
		n.SetPath(netsim.PathParams{Delay: 10 * netsim.Millisecond, Jitter: 2 * netsim.Millisecond, Loss: cfg.Loss})
	}
	n.SetFactory(u)
	if cfg.Trace != nil {
		n.AddFilter(cfg.Trace)
	}
	if cfg.PcapRecorder != nil {
		cfg.PcapRecorder.BindMetrics(n.Metrics())
		n.AddFilter(cfg.PcapRecorder.Filter())
	}
	for _, f := range cfg.Filters {
		n.AddFilter(f)
	}
	for _, mk := range cfg.FilterFactories {
		n.AddFilter(mk())
	}
	sc := core.NewScanner(n, ScannerAddr, core.Config{Seed: cfg.Seed})
	if cfg.Flight != nil {
		cfg.Flight.Attach(n, ScannerAddr)
		sc.SetFlight(cfg.Flight)
	}
	if cfg.Debug != nil {
		cfg.Debug.AttachShard(int(cfg.Shard), n.Metrics())
		if cfg.Flight != nil {
			cfg.Debug.SetRecorder(cfg.Flight)
		}
		if cfg.Timeseries != nil {
			cfg.Debug.SetTimeseries(cfg.Timeseries)
		}
	}

	space := cfg.space(u)
	fields := cfg.configFields(u.Seed, space.Size())
	fp := checkpoint.FingerprintFields(fields)

	engCfg := scanner.Config{
		Rate:           cfg.Rate,
		MaxOutstanding: cfg.MaxOutstanding,
		Seed:           cfg.Seed,
		SampleFraction: cfg.SampleFraction,
		Shard:          cfg.Shard,
		Shards:         cfg.Shards,
		MaxRetries:     cfg.MaxRetries,
		Smart:          cfg.Smart,
	}
	startSeq := uint64(0)
	if cfg.Resume != nil {
		if err := cfg.Resume.ValidateConfig(fields); err != nil {
			return nil, err
		}
		shardSt, err := cfg.Resume.Find(cfg.Shard, cfg.Shards)
		if err != nil {
			return nil, err
		}
		cur := shardSt.Cursor
		engCfg.Resume = &cur
		startSeq = cur.Seq
	}

	// Output pipeline: records are emitted through a reorder buffer so
	// they reach the sink in permutation order even though probes
	// complete out of order — the invariant that makes a checkpoint's
	// cursor consistent with the sink contents.
	base := cfg.Sink
	var mem *output.MemorySink
	if base == nil {
		mem = output.NewMemorySink()
		base = mem
	} else if cfg.KeepRecords {
		mem = output.NewMemorySink()
		base = output.Tee(base, mem)
	}
	reorder := output.NewReorderAt(base, startSeq)
	var sinkErr error
	keepErr := func(err error) {
		if err != nil && sinkErr == nil {
			sinkErr = err
		}
	}

	res := &ScanResult{}
	var eng *scanner.Engine
	launch := func(addr wire.Addr, done func()) {
		seq, pos := eng.LaunchCursor()
		tc := core.TargetConfig{
			Strategy: cfg.Strategy, MSSList: cfg.MSSList, Repeats: cfg.Repeats,
			NoRedirectFollow: cfg.NoRedirectFollow, NoBloat: cfg.NoBloat,
		}
		if cfg.Flight != nil {
			cfg.Flight.Begin(n.Now(), addr)
		}
		sc.ProbeTarget(addr, tc, func(tr *core.TargetResult) {
			if tr.Outcome == core.OutcomeUnreachable && eng.Fail(seq) {
				return // engine re-launches; Begin resets the journal then
			}
			rec := enrich(u, tr)
			rec.Seq = pos
			if cfg.Flight != nil {
				verdict, detail := tr.Outcome.String(), ""
				if cfg.FlightClassify != nil {
					verdict, detail = cfg.FlightClassify(&rec)
				}
				cfg.Flight.End(n.Now(), addr, verdict, detail)
			}
			keepErr(reorder.Add(seq, &rec))
			done()
		})
	}
	eng = scanner.NewEngine(n, space, engCfg, launch)

	// Telemetry sampler: rides the simulation like the status reporter
	// and the checkpointer; stopped at engine finish (or after a time
	// limit) so it never keeps RunUntilIdle alive. Its probes read
	// single-threaded engine and sink state on the simulation goroutine.
	var sampler *timeseries.Sampler
	if cfg.Timeseries != nil {
		sampler = timeseries.Attach(n, cfg.Timeseries, int(cfg.Shard))
		sampler.AddProbe(func(set func(string, int64)) {
			set("engine.frontier_lag", eng.FrontierLag())
			set("engine.retry_queue", int64(eng.RetryQueueLen()))
		})
		if async, ok := cfg.Sink.(*output.AsyncSink); ok {
			sampler.AddProbe(func(set func(string, int64)) {
				set("sink.queue_depth", int64(async.Depth()))
				set("sink.queue_cap", int64(async.Cap()))
			})
		}
	}

	writeCheckpoint := func(complete bool) error {
		if err := base.Flush(); err != nil {
			return err
		}
		st := eng.Stats()
		ck := &checkpoint.State{
			Fingerprint: fp,
			Config:      fields,
			Completed:   complete,
			VirtualNS:   int64(n.Now()),
			Shards: []checkpoint.ShardState{{
				Shard: cfg.Shard, Shards: cfg.Shards, Cursor: eng.Cursor(),
				Launched: st.Launched, Completed: st.Completed,
				Skipped: st.Skipped, Pruned: st.Pruned, Retries: st.Retries,
			}},
		}
		var buf bytes.Buffer
		if err := n.Metrics().Snapshot().WriteJSON(&buf); err == nil {
			ck.Metrics = buf.Bytes()
		}
		return checkpoint.Save(cfg.CheckpointPath, ck)
	}

	finished := false
	var reporter *statusReporter
	var ckTimer *netsim.Timer
	eng.OnFinish(func(s scanner.Stats) {
		finished = true
		res.Engine = s
		if reporter != nil {
			reporter.stop()
		}
		if sampler != nil {
			sampler.Stop()
		}
		if ckTimer != nil {
			ckTimer.Cancel()
			ckTimer = nil
		}
	})
	if cfg.CheckpointPath != "" {
		interval := cfg.CheckpointInterval
		if interval <= 0 {
			interval = 10 * netsim.Second
		}
		var tick func()
		tick = func() {
			if finished {
				return
			}
			keepErr(writeCheckpoint(false))
			ckTimer = n.After(interval, tick)
		}
		ckTimer = n.After(interval, tick)
	}
	if cfg.StatusInterval > 0 && cfg.StatusOut != nil {
		reporter = startStatusReporter(cfg.StatusOut, n, eng, cfg.StatusLabel, cfg.StatusInterval, cfg.Timeseries)
	}
	eng.Start()
	if cfg.TimeLimit > 0 {
		n.Run(cfg.TimeLimit)
		if !finished {
			if reporter != nil {
				reporter.stop()
			}
			if sampler != nil {
				sampler.Stop()
			}
		}
	} else {
		n.RunUntilIdle()
	}
	if !finished {
		res.Incomplete = true
		res.Engine = eng.Stats()
		res.Engine.FinishedAt = n.Now()
	}
	if cfg.CheckpointPath != "" {
		keepErr(writeCheckpoint(finished))
	}
	keepErr(base.Flush())
	res.Net = n.Stats()
	res.Scan = sc.Stats()
	res.VirtualTime = res.Engine.Duration()
	res.Metrics = n.Metrics().Snapshot()
	if mem != nil {
		res.Records = mem.Records()
	}
	cur := eng.Cursor()
	res.Cursor = &cur
	res.MaxBuffered = reorder.MaxPending()
	return res, sinkErr
}

// enrich attaches AS and rDNS metadata to a target result.
func enrich(u *inet.Universe, tr *core.TargetResult) analysis.Record {
	r := analysis.FromTarget(tr)
	if as := u.ASOf(tr.Addr); as != nil {
		r.ASN = as.ASN
		r.ASName = as.Name
	}
	r.RDNS = u.ReverseDNS(tr.Addr)
	return r
}

// RunPopularScan probes the universe's synthetic Alexa-style list with
// hostnames available (Host header and SNI), as §4.1's popular-host scan
// does.
func RunPopularScan(u *inet.Universe, n int, strategy core.Strategy, seed uint64) *ScanResult {
	net := netsim.New(seed)
	net.SetPath(netsim.PathParams{Delay: 10 * netsim.Millisecond, Jitter: 2 * netsim.Millisecond})
	net.SetFactory(u)
	sc := core.NewScanner(net, ScannerAddr, core.Config{Seed: seed})

	list := u.PopularList(n)
	res := &ScanResult{}
	addrs := make([]wire.Addr, len(list))
	names := make(map[wire.Addr]string, len(list))
	for i, ph := range list {
		addrs[i] = ph.Addr
		names[ph.Addr] = ph.Name
	}
	space := scanner.NewSpaceFromList(addrs)
	launch := func(addr wire.Addr, done func()) {
		tc := core.TargetConfig{Strategy: strategy, SNI: names[addr]}
		sc.ProbeTarget(addr, tc, func(tr *core.TargetResult) {
			res.Records = append(res.Records, enrich(u, tr))
			done()
		})
	}
	eng := scanner.NewEngine(net, space, scanner.Config{Rate: 10000, MaxOutstanding: 20000, Seed: seed}, launch)
	eng.OnFinish(func(s scanner.Stats) { res.Engine = s })
	eng.Start()
	net.RunUntilIdle()
	res.Net = net.Stats()
	res.Scan = sc.Stats()
	res.VirtualTime = res.Engine.Duration()
	res.Metrics = net.Metrics().Snapshot()
	return res
}
