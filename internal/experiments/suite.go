package experiments

import (
	"fmt"
	"sort"
	"strings"

	"iwscan/internal/analysis"
	"iwscan/internal/core"
	"iwscan/internal/inet"
)

// Suite runs the paper's experiments against one universe, caching the
// two expensive full scans (HTTP and TLS) that several tables and
// figures share.
type Suite struct {
	Universe *inet.Universe
	Seed     uint64
	// Sample is the fraction of the universe's address space the "full"
	// scans probe. 1.0 reproduces the complete scan; smaller values
	// trade precision for speed (the experiments' own §4.1 result says
	// small samples are representative).
	Sample float64

	httpScan *ScanResult
	tlsScan  *ScanResult
}

// NewSuite builds a suite over the default Internet2017 universe.
func NewSuite(seed uint64, sample float64) *Suite {
	if sample <= 0 || sample > 1 {
		sample = 1
	}
	return &Suite{Universe: inet.NewInternet2017(seed), Seed: seed, Sample: sample}
}

// HTTPScan returns the cached full HTTP scan, running it on first use.
func (s *Suite) HTTPScan() *ScanResult {
	if s.httpScan == nil {
		s.httpScan = RunScan(s.Universe, ScanConfig{
			Seed: s.Seed, Strategy: core.StrategyHTTP, SampleFraction: s.Sample,
		})
	}
	return s.httpScan
}

// TLSScan returns the cached full TLS scan, running it on first use.
func (s *Suite) TLSScan() *ScanResult {
	if s.tlsScan == nil {
		s.tlsScan = RunScan(s.Universe, ScanConfig{
			Seed: s.Seed + 1, Strategy: core.StrategyTLS, SampleFraction: s.Sample,
		})
	}
	return s.tlsScan
}

// --- Table 1 ---------------------------------------------------------------

// Table1Result reproduces the scan dataset overview.
type Table1Result struct {
	HTTP, TLS analysis.Overview
}

// Table1 runs (or reuses) both full scans and computes the overview.
func (s *Suite) Table1() *Table1Result {
	return &Table1Result{
		HTTP: analysis.Table1(s.HTTPScan().Records),
		TLS:  analysis.Table1(s.TLSScan().Records),
	}
}

// Render formats the result against the paper's Table 1.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: scan data set overview (fractions of reachable hosts)\n")
	fmt.Fprintf(&b, "  %-6s %10s %9s %9s %7s\n", "Scan", "Reachable", "Success", "FewData", "Error")
	fmt.Fprintf(&b, "  %-6s %10d %8.1f%% %8.1f%% %6.1f%%   (paper: %.1f%% / %.1f%% / %.1f%%)\n",
		"HTTP", r.HTTP.Reachable, 100*r.HTTP.Success, 100*r.HTTP.FewData, 100*r.HTTP.Error,
		100*PaperTable1.HTTPSuccess, 100*PaperTable1.HTTPFewData, 100*PaperTable1.HTTPError)
	fmt.Fprintf(&b, "  %-6s %10d %8.1f%% %8.1f%% %6.1f%%   (paper: %.1f%% / %.1f%% / %.1f%%)\n",
		"TLS", r.TLS.Reachable, 100*r.TLS.Success, 100*r.TLS.FewData, 100*r.TLS.Error,
		100*PaperTable1.TLSSuccess, 100*PaperTable1.TLSFewData, 100*PaperTable1.TLSError)
	return b.String()
}

// --- Table 2 ---------------------------------------------------------------

// Table2Result reproduces the few-data lower-bound table.
type Table2Result struct {
	HTTP, TLS analysis.Table2Row
}

// Table2 computes the lower-bound distributions from the full scans.
func (s *Suite) Table2() *Table2Result {
	return &Table2Result{
		HTTP: analysis.Table2(s.HTTPScan().Records),
		TLS:  analysis.Table2(s.TLSScan().Records),
	}
}

// Render formats the result against the paper's Table 2.
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: lower IW bounds for few-data hosts (fractions of few-data hosts)\n")
	row := func(name string, got analysis.Table2Row, paperNoData float64, paper [11]float64) {
		fmt.Fprintf(&b, "  %-5s NoData %5.1f%% (paper %4.1f%%) |", name, 100*got.NoData, 100*paperNoData)
		for i := 1; i <= 10; i++ {
			fmt.Fprintf(&b, " IW%d %.1f%%/%.1f%%", i, 100*got.Bound[i], 100*paper[i])
		}
		fmt.Fprintf(&b, " (measured/paper)\n")
	}
	row("HTTP", r.HTTP, PaperTable2.HTTPNoData, PaperTable2.HTTPBounds)
	row("TLS", r.TLS, PaperTable2.TLSNoData, PaperTable2.TLSBounds)
	return b.String()
}

// --- Figure 3 --------------------------------------------------------------

// Figure3Result reproduces the IW distribution with subsampling.
type Figure3Result struct {
	HTTPDist map[int]float64
	TLSDist  map[int]float64
	// Subsamples holds per-fraction distributions (fractions of the
	// successful population probed).
	HTTPSubsamples map[float64]map[int]float64
	TLSSubsamples  map[float64]map[int]float64
	// Replicates1pc are the 30-replicate statistics of the 1% sample.
	HTTPReplicates []analysis.ReplicateStats
	TLSReplicates  []analysis.ReplicateStats
	// Agreement of dual-service hosts.
	Agreement analysis.AgreementStats
}

// SubsampleFractions are the sample sizes Figure 3 shows.
var SubsampleFractions = []float64{0.01, 0.10, 0.30, 0.50, 1.00}

// Figure3 computes the IW distributions, the subsample stability result
// ("scanning 1% is enough") and the HTTP/TLS agreement.
func (s *Suite) Figure3() *Figure3Result {
	http := s.HTTPScan().Records
	tls := s.TLSScan().Records
	r := &Figure3Result{
		HTTPDist:       analysis.IWDistribution(http),
		TLSDist:        analysis.IWDistribution(tls),
		HTTPSubsamples: make(map[float64]map[int]float64),
		TLSSubsamples:  make(map[float64]map[int]float64),
		Agreement:      analysis.Agreement(http, tls),
	}
	for _, f := range SubsampleFractions {
		r.HTTPSubsamples[f] = analysis.IWDistribution(analysis.Subsample(http, f, s.Seed+7))
		r.TLSSubsamples[f] = analysis.IWDistribution(analysis.Subsample(tls, f, s.Seed+8))
	}
	r.HTTPReplicates = analysis.SubsampleReplicates(http, 0.01, 30, s.Seed+9, 0.001)
	r.TLSReplicates = analysis.SubsampleReplicates(tls, 0.01, 30, s.Seed+10, 0.001)
	return r
}

// Render formats the distributions and the stability statistics.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: IW distribution among successful estimations (MSS 64)\n")
	fmt.Fprintf(&b, "  HTTP: %s\n", analysis.FormatDistribution(filterDominant(r.HTTPDist, 0.001)))
	fmt.Fprintf(&b, "   (paper: IW1 %.1f%%, IW2 %.1f%%, IW4 %.1f%%, IW10 %.1f%%)\n",
		100*PaperFigure3HTTP[1], 100*PaperFigure3HTTP[2], 100*PaperFigure3HTTP[4], 100*PaperFigure3HTTP[10])
	fmt.Fprintf(&b, "  TLS:  %s\n", analysis.FormatDistribution(filterDominant(r.TLSDist, 0.001)))
	fmt.Fprintf(&b, "   (paper: IW1 %.1f%%, IW2 %.1f%%, IW4 %.1f%%, IW10 %.1f%%)\n",
		100*PaperFigure3TLS[1], 100*PaperFigure3TLS[2], 100*PaperFigure3TLS[4], 100*PaperFigure3TLS[10])
	fmt.Fprintf(&b, "  Dual-service agreement: %d of %d hosts (paper: 6.2M of 7M)\n",
		r.Agreement.Agreeing, r.Agreement.Dual)
	fmt.Fprintf(&b, "  Subsample stability (max |dev| from full distribution over dominant IWs):\n")
	for _, f := range SubsampleFractions[:4] {
		fmt.Fprintf(&b, "    %4.0f%% sample: HTTP dev %.2fpp, TLS dev %.2fpp\n", 100*f,
			100*maxDevMap(r.HTTPDist, r.HTTPSubsamples[f]), 100*maxDevMap(r.TLSDist, r.TLSSubsamples[f]))
	}
	fmt.Fprintf(&b, "  1%% sample, 30 replicates (mean vs full, 1-99%% quantile band):\n")
	for _, st := range r.HTTPReplicates {
		if st.FullFrac < 0.05 {
			continue
		}
		fmt.Fprintf(&b, "    HTTP IW%-3d full %5.2f%%  mean %5.2f%%  band [%5.2f%%, %5.2f%%]\n",
			st.IW, 100*st.FullFrac, 100*st.Mean, 100*st.Q01, 100*st.Q99)
	}
	return b.String()
}

func filterDominant(dist map[int]float64, min float64) map[int]float64 {
	out := make(map[int]float64)
	for iw, f := range dist {
		if f >= min {
			out[iw] = f
		}
	}
	return out
}

func maxDevMap(full, sub map[int]float64) float64 {
	maxDev := 0.0
	for iw, f := range full {
		if f < 0.001 {
			continue
		}
		d := f - sub[iw]
		if d < 0 {
			d = -d
		}
		if d > maxDev {
			maxDev = d
		}
	}
	return maxDev
}

// sortedIWs lists map keys ascending (shared helper).
func sortedIWs(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	for iw := range m {
		out = append(out, iw)
	}
	sort.Ints(out)
	return out
}
