package experiments

import (
	"fmt"
	"strings"

	"iwscan/internal/netsim"
	"iwscan/internal/tcpstack"
	"iwscan/internal/wire"
)

// MotivationResult reproduces the paper's introductory argument (§1):
// the IW controls how many round trips a short flow needs, so larger
// IWs cut page-load latency — but too-large IWs burst-overflow
// low-capacity links, which is why the value is debated at all.
type MotivationResult struct {
	PageBytes int
	RTT       netsim.Time
	FCT       []FCTPoint

	BottleneckRate  int64
	BottleneckQueue int
	Burst           []BurstPoint
}

// FCTPoint is one flow-completion-time measurement.
type FCTPoint struct {
	IW   int
	FCT  netsim.Time
	RTTs float64 // FCT expressed in round-trip times
}

// BurstPoint is one bottleneck measurement.
type BurstPoint struct {
	IW         int
	QueueDrops int64
	Retransmit int64
	FCT        netsim.Time
	Complete   bool
}

type fetchOutcome struct {
	fct        netsim.Time
	complete   bool
	queueDrops int64
	retx       int64
}

// clientFetch downloads pageBytes from a server with the given IW over
// a path with the given one-way delay and optional bottleneck, using a
// normal ACKing TCP client.
func clientFetch(seed uint64, iw, pageBytes int, oneWay netsim.Time, rate int64, queueBytes int) fetchOutcome {
	n := netsim.New(seed)
	server := wire.MustParseAddr("198.51.100.10")
	client := wire.MustParseAddr("192.0.2.1")
	n.SetPathFunc(func(src, dst wire.Addr) netsim.PathParams {
		p := netsim.PathParams{Delay: oneWay}
		if rate > 0 && src == server {
			p.Rate = rate
			p.QueueBytes = queueBytes
		}
		return p
	})
	host := tcpstack.NewHost(n, server, tcpstack.Config{
		IW:  tcpstack.IWPolicy{Kind: tcpstack.IWSegments, Segments: iw},
		MSS: tcpstack.MSSPolicy{Floor: 64},
		RTO: 500 * netsim.Millisecond,
	})
	host.Listen(80, &fixedResponseApp{size: pageBytes})
	cl := tcpstack.NewClient(n, client, tcpstack.ClientConfig{MSS: 1460})
	var out fetchOutcome
	cl.Connect(server, 80, []byte("GET / HTTP/1.1\r\nHost: s\r\nConnection: close\r\n\r\n"), tcpstack.ClientEvents{
		OnClose: func(c *tcpstack.ClientConn, ok bool) {
			out.fct = n.Now()
			out.complete = ok && c.BytesReceived() == int64(pageBytes)
		},
	})
	n.RunUntilIdle()
	out.queueDrops = n.Stats().PacketsQueueDrop
	out.retx = host.Stats().Retransmits
	return out
}

// fixedResponseApp serves exactly size bytes then closes.
type fixedResponseApp struct{ size int }

func (a *fixedResponseApp) NewSession(c *tcpstack.Conn) tcpstack.Session {
	return &fixedResponseSession{app: a, conn: c}
}

type fixedResponseSession struct {
	app  *fixedResponseApp
	conn *tcpstack.Conn
	sent bool
}

func (s *fixedResponseSession) OnData([]byte) {
	if s.sent {
		return
	}
	s.sent = true
	s.conn.Write(make([]byte, s.app.size))
	s.conn.Close()
}

func (s *fixedResponseSession) OnPeerClose() {}

// Motivation measures flow completion time versus IW for a short flow,
// and burst losses at a constrained access link for aggressive IWs.
func Motivation(seed uint64) *MotivationResult {
	const (
		page  = 15 * 1460 // a ~22 kB page: 15 full-MSS segments
		rtt   = 50 * netsim.Millisecond
		rate  = 2_000_000 // 2 Mbit/s access link
		queue = 8 * 1024  // 8 kB buffer
	)
	r := &MotivationResult{
		PageBytes: page, RTT: rtt,
		BottleneckRate: rate, BottleneckQueue: queue,
	}
	for _, iw := range []int{1, 2, 3, 4, 10, 16, 32} {
		out := clientFetch(seed, iw, page, rtt/2, 0, 0)
		r.FCT = append(r.FCT, FCTPoint{
			IW: iw, FCT: out.fct, RTTs: float64(out.fct) / float64(rtt),
		})
	}
	for _, iw := range []int{4, 10, 20, 40, 64} {
		out := clientFetch(seed, iw, page, rtt/2, rate, queue)
		r.Burst = append(r.Burst, BurstPoint{
			IW: iw, QueueDrops: out.queueDrops, Retransmit: out.retx,
			FCT: out.fct, Complete: out.complete,
		})
	}
	return r
}

// Render formats the motivation measurements.
func (r *MotivationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§1 motivation: why the IW matters for short flows (%d-byte page, %v RTT)\n", r.PageBytes, r.RTT)
	fmt.Fprintf(&b, "  flow completion time vs IW (unconstrained path):\n")
	for _, p := range r.FCT {
		fmt.Fprintf(&b, "    IW %-3d  FCT %8v  = %.1f RTTs\n", p.IW, p.FCT, p.RTTs)
	}
	fmt.Fprintf(&b, "  burst behaviour at a %d kbit/s access link with a %d B queue:\n",
		r.BottleneckRate/1000, r.BottleneckQueue)
	for _, p := range r.Burst {
		fmt.Fprintf(&b, "    IW %-3d  queue drops %3d  retransmissions %3d  FCT %8v\n",
			p.IW, p.QueueDrops, p.Retransmit, p.FCT)
	}
	fmt.Fprintf(&b, "  larger IWs save round trips on short flows but overflow shallow buffers —\n")
	fmt.Fprintf(&b, "  the trade-off behind the IW debate the paper's census informs\n")
	fmt.Fprintf(&b, "  (loss recovery here is RTO-only; fast retransmit would soften, not remove,\n")
	fmt.Fprintf(&b, "  the overflow penalty)\n")
	return b.String()
}
