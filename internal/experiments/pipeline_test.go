package experiments

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"iwscan/internal/checkpoint"
	"iwscan/internal/core"
	"iwscan/internal/inet"
	"iwscan/internal/netsim"
	"iwscan/internal/output"
)

// streamCfg is the shared configuration for the checkpoint/resume tests:
// small enough to run fast, slow enough (rate 100/s against a ~3s probe
// tail) that a virtual time limit lands mid-scan.
func streamCfg() ScanConfig {
	return ScanConfig{
		Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.001,
		Rate: 100, MSSList: []int{64}, Repeats: 1,
	}
}

// TestStreamedScanHoldsOBufferRecords is the acceptance criterion for
// the streaming pipeline: a full-sample scan through a file sink must
// hold O(buffer) records — bounded by the in-flight reorder window, not
// the target count.
func TestStreamedScanHoldsOBufferRecords(t *testing.T) {
	u := inet.NewInternet2017(2017)
	fileSink, err := output.NewFileSink(io.Discard, "csv", false)
	if err != nil {
		t.Fatal(err)
	}
	counting := output.NewCountingSink(fileSink)
	cfg := ScanConfig{
		Seed: 3, Strategy: core.StrategySYN, SampleFraction: 1,
		Rate: 100000, MaxOutstanding: 10000, Sink: counting,
	}
	res, err := RunScanChecked(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("streamed scan retained %d records in the result without KeepRecords", len(res.Records))
	}
	if counting.Count() != res.Engine.Launched || res.Engine.Launched == 0 {
		t.Fatalf("sink saw %d records, engine launched %d", counting.Count(), res.Engine.Launched)
	}
	// The reorder buffer is bounded by the completion-reordering window
	// (probes in flight plus those stalled behind the slowest one), never
	// by the target count.
	if res.MaxBuffered == 0 {
		t.Fatal("MaxBuffered = 0: the high-water mark was not tracked")
	}
	if int64(res.MaxBuffered) >= res.Engine.Launched/5 {
		t.Fatalf("buffered up to %d of %d records — accumulating, not streaming",
			res.MaxBuffered, res.Engine.Launched)
	}
	t.Logf("streamed %d records, max %d buffered (max in flight %d)",
		counting.Count(), res.MaxBuffered, res.Engine.MaxInFlight)
}

// TestKeepRecordsStillPopulatesResult: the -q/!quiet path keeps the
// in-memory record set alongside the sink stream, and both agree.
func TestKeepRecordsStillPopulatesResult(t *testing.T) {
	u := inet.NewInternet2017(2017)
	mem := output.NewMemorySink()
	cfg := streamCfg()
	cfg.Rate = 10000
	cfg.Sink = mem
	cfg.KeepRecords = true
	res, err := RunScanChecked(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 || len(res.Records) != len(mem.Records()) {
		t.Fatalf("result kept %d records, sink saw %d", len(res.Records), len(mem.Records()))
	}
	for i := range res.Records {
		if res.Records[i] != mem.Records()[i] {
			t.Fatalf("record %d differs between result and sink", i)
		}
	}
}

// runSegments drives one logical scan to completion as a sequence of
// time-limited runs spliced via checkpoint/resume, appending CSV to buf.
// It returns the number of interrupted segments.
func runSegments(t *testing.T, u *inet.Universe, buf *bytes.Buffer, ckPath string, limits []netsim.Time) int {
	return runSegmentsCfg(t, u, streamCfg, buf, ckPath, limits)
}

// runSegmentsCfg is runSegments over any base configuration factory
// (called fresh per segment so segments never share mutable state).
func runSegmentsCfg(t *testing.T, u *inet.Universe, mk func() ScanConfig, buf *bytes.Buffer, ckPath string, limits []netsim.Time) int {
	t.Helper()
	interrupted := 0
	for seg := 0; ; seg++ {
		if seg >= 40 {
			t.Fatal("scan did not complete within 40 segments — resume is not making progress")
		}
		cfg := mk()
		cfg.CheckpointPath = ckPath
		cfg.CheckpointInterval = netsim.Second
		cfg.TimeLimit = limits[seg%len(limits)]
		if seg == 0 {
			cfg.Sink = output.NewCSVSink(buf)
		} else {
			st, err := checkpoint.Load(ckPath)
			if err != nil {
				t.Fatalf("segment %d: %v", seg, err)
			}
			if st.Completed {
				t.Fatalf("segment %d: checkpoint already completed but last run was incomplete", seg)
			}
			cfg.Resume = st
			cfg.Sink = output.NewCSVAppendSink(buf)
		}
		res, err := RunScanChecked(u, cfg)
		if err != nil {
			t.Fatalf("segment %d: %v", seg, err)
		}
		if !res.Incomplete {
			return interrupted
		}
		interrupted++
	}
}

// TestCheckpointResumeByteIdentical is the acceptance criterion for
// checkpointed scans: kill a scan at several points, resume each time,
// and the concatenated output must be byte-identical to an
// uninterrupted run with the same seed.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	u := inet.NewInternet2017(2017)

	// Reference: one uninterrupted run.
	var want bytes.Buffer
	cfg := streamCfg()
	cfg.Sink = output.NewCSVSink(&want)
	ref, err := RunScanChecked(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Incomplete {
		t.Fatal("reference run incomplete")
	}

	// Interrupted: the same scan killed at varying virtual-time limits.
	var got bytes.Buffer
	ckPath := filepath.Join(t.TempDir(), "scan.ck")
	interrupted := runSegments(t, u, &got, ckPath, []netsim.Time{
		3600 * netsim.Millisecond, 4500 * netsim.Millisecond, 4 * netsim.Second,
	})
	if interrupted < 2 {
		t.Fatalf("scan was interrupted %d times; want at least 2 to exercise resume", interrupted)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("spliced output differs from the uninterrupted run (%d vs %d bytes, %d interruptions)",
			got.Len(), want.Len(), interrupted)
	}

	// The final checkpoint is marked completed and refuses another resume.
	st, err := checkpoint.Load(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Completed {
		t.Fatal("final checkpoint not marked completed")
	}
	cfg = streamCfg()
	cfg.Resume = st
	if _, err := RunScanChecked(u, cfg); err == nil ||
		!strings.Contains(err.Error(), "completed") {
		t.Fatalf("resuming a completed checkpoint: err = %v, want completed rejection", err)
	}
}

// TestResumeRejectsMismatchedConfig: a checkpoint must never be
// replayed into a scan with a different identity (seed, sample, ...).
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	u := inet.NewInternet2017(2017)
	ckPath := filepath.Join(t.TempDir(), "scan.ck")
	cfg := streamCfg()
	cfg.Sink = output.NewCSVSink(io.Discard)
	cfg.CheckpointPath = ckPath
	cfg.TimeLimit = 3600 * netsim.Millisecond
	res, err := RunScanChecked(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete {
		t.Fatal("time-limited run unexpectedly completed; cannot test resume rejection")
	}
	st, err := checkpoint.Load(ckPath)
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func(*ScanConfig){
		"seed":     func(c *ScanConfig) { c.Seed++ },
		"sample":   func(c *ScanConfig) { c.SampleFraction *= 2 },
		"strategy": func(c *ScanConfig) { c.Strategy = core.StrategyTLS },
		"mss":      func(c *ScanConfig) { c.MSSList = []int{64, 128} },
		"shards":   func(c *ScanConfig) { c.Shards = 2 },
	} {
		bad := streamCfg()
		mutate(&bad)
		bad.Resume = st
		if _, err := RunScanChecked(u, bad); err == nil ||
			!strings.Contains(err.Error(), "fingerprint") {
			t.Errorf("resume with mutated %s: err = %v, want fingerprint mismatch", name, err)
		}
	}

	// The matching configuration does resume.
	good := streamCfg()
	good.Resume = st
	good.Sink = output.NewCSVAppendSink(io.Discard)
	if _, err := RunScanChecked(u, good); err != nil {
		t.Fatalf("resume with the matching config failed: %v", err)
	}
}

// TestParallelMergeSinkMatchesSerial: shards streaming through the
// k-way merge must produce the same ordered byte stream an unsharded
// scan writes — without any shard accumulating its record set.
func TestParallelMergeSinkMatchesSerial(t *testing.T) {
	u := inet.NewInternet2017(55)
	cfg := ScanConfig{Seed: 9, Strategy: core.StrategyHTTP, SampleFraction: 0.004, MSSList: []int{64}, Repeats: 1}

	var serial bytes.Buffer
	c := cfg
	c.Sink = output.NewCSVSink(&serial)
	sres, err := RunScanChecked(u, c)
	if err != nil {
		t.Fatal(err)
	}

	var parallel bytes.Buffer
	c = cfg
	c.Sink = output.NewCSVSink(&parallel)
	pres, err := RunScanParallelChecked(u, c, 4)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("merged parallel stream differs from the serial one (%d vs %d bytes)",
			parallel.Len(), serial.Len())
	}
	if pres.Engine.Launched != sres.Engine.Launched {
		t.Fatalf("parallel launched %d, serial %d", pres.Engine.Launched, sres.Engine.Launched)
	}
	if int64(pres.MaxBuffered) >= sres.Engine.Launched {
		t.Fatalf("parallel pipeline buffered %d of %d records", pres.MaxBuffered, sres.Engine.Launched)
	}
}

// TestParallelRejectsCheckpointing: in-process shards share one sink, so
// per-engine checkpoint cursors cannot be made consistent with it;
// the combination must error instead of writing unusable checkpoints.
func TestParallelRejectsCheckpointing(t *testing.T) {
	u := inet.NewInternet2017(55)
	cfg := streamCfg()
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "scan.ck")
	if _, err := RunScanParallelChecked(u, cfg, 2); err == nil {
		t.Fatal("parallel scan with a checkpoint path did not error")
	}
	cfg = streamCfg()
	cfg.Resume = &checkpoint.State{}
	if _, err := RunScanParallelChecked(u, cfg, 2); err == nil {
		t.Fatal("parallel scan with a resume state did not error")
	}
}

// TestScanWithRetriesCompletes: the retry plumbing through RunScan
// re-launches unreachable probes and surfaces the count in the stats
// and the merged metrics.
func TestScanWithRetriesCompletes(t *testing.T) {
	u := inet.NewInternet2017(2017)
	cfg := streamCfg()
	cfg.Rate = 10000
	cfg.MaxRetries = 1
	res, err := RunScanChecked(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The modelled space always has unresponsive addresses, so retries
	// must actually have happened and been counted coherently.
	if res.Engine.Retries == 0 {
		t.Fatal("no retries recorded against a space with unreachable targets")
	}
	if got := res.Metrics.Counters["engine.retries"]; got != res.Engine.Retries {
		t.Fatalf("engine.retries metric = %d, stats say %d", got, res.Engine.Retries)
	}
	// Unreachable records remain (retries exhausted), once per target.
	seen := map[uint32]bool{}
	for _, r := range res.Records {
		if seen[uint32(r.Addr)] {
			t.Fatalf("%s appears twice in the record set", r.Addr)
		}
		seen[uint32(r.Addr)] = true
	}
	if int64(len(res.Records)) != res.Engine.Launched {
		t.Fatalf("%d records for %d launched targets", len(res.Records), res.Engine.Launched)
	}
}
