package experiments

// Reference values reported in the paper (Rüth et al., IMC '17), used to
// annotate every reproduced table and figure in EXPERIMENTS.md. The
// reproduction targets the *shape* of each result — who dominates, by
// roughly what factor, where crossovers fall — not exact percentages,
// since the substrate is a calibrated simulation rather than the
// August-2017 Internet.

// PaperTable1 holds the Table 1 rows (fractions of reachable hosts).
var PaperTable1 = struct {
	HTTPSuccess, HTTPFewData, HTTPError float64
	TLSSuccess, TLSFewData, TLSError    float64
}{
	HTTPSuccess: 0.508, HTTPFewData: 0.476, HTTPError: 0.016,
	TLSSuccess: 0.856, TLSFewData: 0.133, TLSError: 0.011,
}

// PaperFigure3HTTP and PaperFigure3TLS are the dominant IW shares among
// successful estimations (read off Figure 3).
var (
	PaperFigure3HTTP = map[int]float64{1: 0.105, 2: 0.19, 4: 0.135, 10: 0.54}
	PaperFigure3TLS  = map[int]float64{1: 0.08, 2: 0.145, 4: 0.28, 10: 0.47}
)

// PaperTable2 holds the few-data lower-bound distribution (fractions of
// few-data hosts).
var PaperTable2 = struct {
	HTTPNoData float64
	HTTPBounds [11]float64
	TLSNoData  float64
	TLSBounds  [11]float64
}{
	HTTPNoData: 0.048,
	HTTPBounds: [11]float64{0, 0.165, 0.071, 0.072, 0.029, 0.036, 0.020, 0.450, 0.027, 0.011, 0.009},
	TLSNoData:  0.178,
	TLSBounds:  [11]float64{0, 0.563, 0.056, 0.007, 0.019, 0.028, 0.024, 0.024, 0.034, 0.004, 0.008},
}

// PaperFigure2 holds the certificate-chain statistics behind Figure 2.
var PaperFigure2 = struct {
	MeanChain      float64
	MinChain       int
	MaxChain       int
	CoverageIW10   float64 // P(chain >= 640 B), i.e. IW10 at MSS 64
	CoverageIW34   float64 // P(chain >= 2176 B), i.e. IW34 at MSS 64
	MSS1336Support float64 // footnote 1
	MSS1436Support float64
}{
	MeanChain: 2186, MinChain: 36, MaxChain: 65000,
	CoverageIW10: 0.86, CoverageIW34: 0.50,
	MSS1336Support: 0.99, MSS1436Support: 0.80,
}

// PaperFigure4 holds the Alexa-scan headline numbers.
var PaperFigure4 = struct {
	HTTPSuccess, TLSSuccess float64
	HTTPIW10, TLSIW10       float64
}{
	HTTPSuccess: 0.80, TLSSuccess: 0.85,
	HTTPIW10: 0.85, TLSIW10: 0.80,
}

// PaperEfficiency holds the §3.4 scan-duration comparison: full IPv4 at
// 150k packets/s.
var PaperEfficiency = struct {
	IWScanHours   float64
	PortScanHours float64
}{IWScanHours: 7.5, PortScanHours: 6.8}

// PaperByteLimit summarizes §4.2: about 1% of hosts size their IW in
// bytes; roughly half of those use 4 kB.
var PaperByteLimit = struct {
	Fraction     float64
	FourKBShare  float64
	GoDaddyIW48  float64 // share of GoDaddy HTTP hosts at IW 48
	GoDaddyTLS48 float64
}{Fraction: 0.01, FourKBShare: 0.5, GoDaddyIW48: 0.198, GoDaddyTLS48: 0.327}
