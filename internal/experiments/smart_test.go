package experiments

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"

	"iwscan/internal/checkpoint"
	"iwscan/internal/core"
	"iwscan/internal/inet"
	"iwscan/internal/netsim"
	"iwscan/internal/output"
	"iwscan/internal/prefixtree"
	"iwscan/internal/timeseries"
)

// smartBaseCfg is the shared configuration for the smart determinism
// tests: the streamCfg shape (slow enough to interrupt) at a sample
// where the trained model prunes real space.
func smartBaseCfg() ScanConfig {
	return ScanConfig{
		Seed: 11, Strategy: core.StrategyHTTP, SampleFraction: 0.002,
		Rate: 100, MSSList: []int{64}, Repeats: 1,
	}
}

// trainPlan runs the base scan uninterrupted, folds its records into a
// model, and compiles the pruning plan the other tests share.
func trainPlan(t *testing.T, u *inet.Universe, threshold float64) (*prefixtree.Model, *prefixtree.Plan) {
	t.Helper()
	cfg := smartBaseCfg()
	cfg.Rate = 10000
	res, err := RunScanChecked(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete || len(res.Records) == 0 {
		t.Fatal("training run incomplete or empty")
	}
	model := prefixtree.New()
	model.ObserveRecords(res.Records)
	plan := prefixtree.NewPlan(model, prefixtree.PlanConfig{
		Threshold: threshold, Explore: -1, Seed: smartBaseCfg().Seed,
	})
	return model, plan
}

// TestSmartScanDeterministic: the same seed and plan produce
// byte-identical output on every run — including with telemetry armed,
// which must observe without perturbing.
func TestSmartScanDeterministic(t *testing.T) {
	u := inet.NewInternet2017(2017)
	_, plan := trainPlan(t, u, 0.01)

	run := func(arm bool) []byte {
		var buf bytes.Buffer
		cfg := smartBaseCfg()
		cfg.Rate = 10000
		cfg.Smart = plan
		cfg.Sink = output.NewCSVSink(&buf)
		if arm {
			cfg.Timeseries = timeseries.NewStore(timeseries.Config{Ring: 64})
		}
		res, err := RunScanChecked(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Incomplete {
			t.Fatal("smart run incomplete")
		}
		if res.Engine.Pruned == 0 {
			t.Fatal("smart run pruned nothing — the plan is not engaged")
		}
		return buf.Bytes()
	}

	a, b, armed := run(false), run(false), run(true)
	if !bytes.Equal(a, b) {
		t.Fatalf("two smart runs differ (%d vs %d bytes)", len(a), len(b))
	}
	if !bytes.Equal(a, armed) {
		t.Fatalf("telemetry-armed smart run differs from unarmed (%d vs %d bytes)", len(armed), len(a))
	}
}

// TestSmartScanSavesProbesKeepsHosts pins the quantitative contract on
// the simulated 2017 universe: rescanning with the trained plan must
// skip a large share of the probes while re-finding every responsive
// host (training and rescan share seed and sample, so the sampler
// re-selects the same addresses and zero-responsive /24s are provably
// safe to prune).
func TestSmartScanSavesProbesKeepsHosts(t *testing.T) {
	u := inet.NewInternet2017(2017)

	full := smartBaseCfg()
	full.Rate = 10000
	fullRes, err := RunScanChecked(u, full)
	if err != nil {
		t.Fatal(err)
	}
	model := prefixtree.New()
	model.ObserveRecords(fullRes.Records)
	plan := prefixtree.NewPlan(model, prefixtree.PlanConfig{
		Threshold: 0.01, Explore: -1, Seed: full.Seed,
	})

	smart := smartBaseCfg()
	smart.Rate = 10000
	smart.Smart = plan
	smartRes, err := RunScanChecked(u, smart)
	if err != nil {
		t.Fatal(err)
	}

	fullHosts := len(prefixtree.Hitlist(fullRes.Records))
	smartHosts := len(prefixtree.Hitlist(smartRes.Records))
	saved := 1 - float64(len(smartRes.Records))/float64(len(fullRes.Records))
	t.Logf("full %d probes %d hosts; smart %d probes %d hosts (%.1f%% saved)",
		len(fullRes.Records), fullHosts, len(smartRes.Records), smartHosts, 100*saved)
	if fullHosts == 0 {
		t.Fatal("training run found no hosts")
	}
	if smartHosts < fullHosts {
		t.Fatalf("smart rescan found %d hosts, training run found %d", smartHosts, fullHosts)
	}
	if saved < 0.30 {
		t.Fatalf("smart rescan saved only %.1f%% of probes, want >= 30%%", 100*saved)
	}
}

// TestSmartResumeByteIdentical extends the resume-identity guarantee to
// smart scans: interrupting and resuming a plan-driven scan splices to
// the exact bytes of the uninterrupted run.
func TestSmartResumeByteIdentical(t *testing.T) {
	u := inet.NewInternet2017(2017)
	_, plan := trainPlan(t, u, 0.01)

	mk := func() ScanConfig {
		cfg := smartBaseCfg()
		cfg.Smart = plan
		return cfg
	}

	var want bytes.Buffer
	ref := mk()
	ref.Sink = output.NewCSVSink(&want)
	refRes, err := RunScanChecked(u, ref)
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Incomplete {
		t.Fatal("reference smart run incomplete")
	}

	var got bytes.Buffer
	ckPath := filepath.Join(t.TempDir(), "smart.ck")
	// Limits must exceed the ~3s virtual probe tail or the frontier
	// probe can never complete within a segment and resume cannot make
	// progress (the same bound the plain-scan splice test observes).
	interrupted := runSegmentsCfg(t, u, mk, &got, ckPath, []netsim.Time{
		3600 * netsim.Millisecond, 3700 * netsim.Millisecond, 3650 * netsim.Millisecond,
	})
	if interrupted < 2 {
		t.Fatalf("smart scan was interrupted %d times; want at least 2", interrupted)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("spliced smart output differs from uninterrupted run (%d vs %d bytes, %d interruptions)",
			got.Len(), want.Len(), interrupted)
	}
}

// TestSmartResumeRejectsDifferentModel: a checkpoint written under one
// plan must refuse to resume under another (different threshold or a
// differently trained model), failing with a *checkpoint.MismatchError
// that names the smart field.
func TestSmartResumeRejectsDifferentModel(t *testing.T) {
	u := inet.NewInternet2017(2017)
	model, plan := trainPlan(t, u, 0.01)

	ckPath := filepath.Join(t.TempDir(), "smart.ck")
	cfg := smartBaseCfg()
	cfg.Smart = plan
	cfg.Sink = output.NewCSVSink(io.Discard)
	cfg.CheckpointPath = ckPath
	cfg.TimeLimit = 3600 * netsim.Millisecond
	res, err := RunScanChecked(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete {
		t.Fatal("time-limited smart run unexpectedly completed")
	}
	st, err := checkpoint.Load(ckPath)
	if err != nil {
		t.Fatal(err)
	}

	// A different threshold compiles to a different plan identity.
	otherPlan := prefixtree.NewPlan(model, prefixtree.PlanConfig{
		Threshold: 0.5, Explore: -1, Seed: smartBaseCfg().Seed,
	})
	// A differently trained model, same thresholds.
	otherModel := prefixtree.New()
	otherModel.Observe(0x0a000000, prefixtree.Counts{Probed: 1, Dark: 1})
	otherModelPlan := prefixtree.NewPlan(otherModel, prefixtree.PlanConfig{
		Threshold: 0.01, Explore: -1, Seed: smartBaseCfg().Seed,
	})

	for name, bad := range map[string]*prefixtree.Plan{
		"threshold": otherPlan,
		"model":     otherModelPlan,
		"no-plan":   nil,
	} {
		c := smartBaseCfg()
		if bad != nil {
			c.Smart = bad
		}
		c.Resume = st
		_, err := RunScanChecked(u, c)
		var mm *checkpoint.MismatchError
		if !errors.As(err, &mm) {
			t.Errorf("resume with %s: err = %v, want *checkpoint.MismatchError", name, err)
			continue
		}
		found := false
		for _, f := range mm.Fields {
			if len(f) >= 5 && f[:5] == "smart" {
				found = true
			}
		}
		if !found {
			t.Errorf("resume with %s: mismatch fields %v do not name the smart field", name, mm.Fields)
		}
	}

	// The matching plan resumes cleanly.
	good := smartBaseCfg()
	good.Smart = plan
	good.Resume = st
	good.Sink = output.NewCSVAppendSink(io.Discard)
	if _, err := RunScanChecked(u, good); err != nil {
		t.Fatalf("resume with the matching plan failed: %v", err)
	}
}

// TestHitlistScanDeterministicAndComplete: a hitlist scan probes
// exactly the listed addresses (sample 1), deterministically.
func TestHitlistScanDeterministic(t *testing.T) {
	u := inet.NewInternet2017(2017)
	base := smartBaseCfg()
	base.Rate = 10000
	res, err := RunScanChecked(u, base)
	if err != nil {
		t.Fatal(err)
	}
	hl := prefixtree.Hitlist(res.Records)
	if len(hl) == 0 {
		t.Fatal("training run found no responsive hosts")
	}

	run := func() []byte {
		var buf bytes.Buffer
		cfg := smartBaseCfg()
		cfg.Rate = 10000
		cfg.SampleFraction = 1
		cfg.Hitlist = hl
		cfg.Sink = output.NewCSVSink(&buf)
		cfg.KeepRecords = true
		r, err := RunScanChecked(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := int(r.Engine.Launched); got != len(hl) {
			t.Fatalf("hitlist scan launched %d probes, list has %d", got, len(hl))
		}
		if found := len(prefixtree.Hitlist(r.Records)); found != len(hl) {
			t.Fatalf("hitlist rescan re-found %d of %d hosts", found, len(hl))
		}
		return buf.Bytes()
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("two hitlist runs differ")
	}
}
