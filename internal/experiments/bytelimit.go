package experiments

import (
	"fmt"
	"strings"

	"iwscan/internal/analysis"
	"iwscan/internal/core"
)

// ByteLimitResult reproduces §4.2: hosts that define their IW as a byte
// budget, detected by scanning with MSS 64 and MSS 128 and observing the
// segment count halve.
type ByteLimitResult struct {
	Stats analysis.ByteLimitStats
	// GoDaddy48HTTP is the IW-48 share among GoDaddy's successful HTTP
	// hosts (the §4.3 static-configuration case, which is *not*
	// byte-limited — IW 48 at both MSS values).
	GoDaddy48HTTP float64
	GoDaddy48TLS  float64
}

// ByteLimit evaluates byte-limited IW detection on the full scans.
func (s *Suite) ByteLimit() *ByteLimitResult {
	r := &ByteLimitResult{Stats: analysis.ByteLimit(s.HTTPScan().Records)}
	r.GoDaddy48HTTP = iw48Share(s.HTTPScan().Records, "GoDaddy")
	r.GoDaddy48TLS = iw48Share(s.TLSScan().Records, "GoDaddy")
	return r
}

func iw48Share(records []analysis.Record, asName string) float64 {
	total, at48 := 0, 0
	for i := range records {
		r := &records[i]
		if r.ASName != asName || r.Outcome != core.OutcomeSuccess {
			continue
		}
		total++
		if r.IW == 48 {
			at48++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(at48) / float64(total)
}

// Render formats the §4.2 findings.
func (r *ByteLimitResult) Render() string {
	var b strings.Builder
	st := r.Stats
	fmt.Fprintf(&b, "§4.2: IW defined by byte limit (paired MSS 64 / MSS 128 scans)\n")
	fmt.Fprintf(&b, "  hosts measurable at both MSS values: %d\n", st.Successful)
	fmt.Fprintf(&b, "  byte-limited (segments halve when MSS doubles): %d = %.2f%% (paper ~1%%)\n",
		st.ByteLimited, 100*st.Fraction())
	if st.ByteLimited > 0 {
		fmt.Fprintf(&b, "    4 kB group (64 segs @ MSS 64 -> 32 @ 128): %d = %.0f%% of byte-limited (paper ~50%%)\n",
			st.FourKB, 100*float64(st.FourKB)/float64(st.ByteLimited))
		fmt.Fprintf(&b, "    MTU-fill group (24 -> 12 segs, 1536 B):    %d = %.0f%% of byte-limited\n",
			st.MTUFill, 100*float64(st.MTUFill)/float64(st.ByteLimited))
	}
	fmt.Fprintf(&b, "  GoDaddy static IW48 (not MSS-dependent): HTTP %.1f%% (paper %.1f%%), TLS %.1f%% (paper %.1f%%)\n",
		100*r.GoDaddy48HTTP, 100*PaperByteLimit.GoDaddyIW48,
		100*r.GoDaddy48TLS, 100*PaperByteLimit.GoDaddyTLS48)
	return b.String()
}
