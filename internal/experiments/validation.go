package experiments

import (
	"fmt"
	"strings"

	"iwscan/internal/core"
	"iwscan/internal/httpsim"
	"iwscan/internal/netsim"
	"iwscan/internal/tcpstack"
	"iwscan/internal/wire"
)

// ValidationCase is one controlled-testbed host of §3.5.
type ValidationCase struct {
	Name       string
	Stack      string // "linux" or "windows"
	IW         tcpstack.IWPolicy
	PageLen    int
	EnoughData bool
	// Results
	ExpectedIW  int
	EstimatedIW int
	Outcome     core.Outcome
	Correct     bool
}

// ValidationResult reproduces §3.5's two experiments: ground-truth
// comparison across OS stacks and file sizes, and a loss-injection sweep
// showing only tail loss ever underestimates.
type ValidationResult struct {
	Cases []ValidationCase
	Loss  []LossSweepPoint
}

// LossSweepPoint is one loss rate of the NetEM-style experiment.
type LossSweepPoint struct {
	LossRate      float64
	Probes        int
	Exact         int // per-probe estimates equal to ground truth
	Underestimate int // tail-loss victims: below ground truth
	Overestimate  int
	Inconclusive  int // few-data / error / unreachable probes
	// Aggregated: the 3-probe maximum rule's verdict.
	AggregateExact int
	AggregateRuns  int
}

// validationHostAddr is the testbed host address.
var validationHostAddr = wire.MustParseAddr("203.0.113.50")

// Validation runs the §3.5 testbed.
func Validation(seed uint64) *ValidationResult {
	r := &ValidationResult{}

	linux := tcpstack.MSSPolicy{Floor: 64}
	windows := tcpstack.MSSPolicy{Fallback: 536}
	segs := func(n int) tcpstack.IWPolicy { return tcpstack.IWPolicy{Kind: tcpstack.IWSegments, Segments: n} }

	cases := []ValidationCase{
		{Name: "linux-iw1-big", Stack: "linux", IW: segs(1), PageLen: 8000, EnoughData: true},
		{Name: "linux-iw2-big", Stack: "linux", IW: segs(2), PageLen: 8000, EnoughData: true},
		{Name: "linux-iw4-big", Stack: "linux", IW: segs(4), PageLen: 8000, EnoughData: true},
		{Name: "linux-iw10-big", Stack: "linux", IW: segs(10), PageLen: 8000, EnoughData: true},
		{Name: "linux-iw16-big", Stack: "linux", IW: segs(16), PageLen: 8000, EnoughData: true},
		{Name: "linux-iw10-small", Stack: "linux", IW: segs(10), PageLen: 300, EnoughData: false},
		{Name: "linux-iw4-small", Stack: "linux", IW: segs(4), PageLen: 100, EnoughData: false},
		{Name: "windows-iw10-big", Stack: "windows", IW: segs(10), PageLen: 20000, EnoughData: true},
		{Name: "windows-iw4-big", Stack: "windows", IW: segs(4), PageLen: 20000, EnoughData: true},
		{Name: "windows-iw10-small", Stack: "windows", IW: segs(10), PageLen: 2000, EnoughData: false},
		{Name: "linux-4kbytes-big", Stack: "linux", IW: tcpstack.IWPolicy{Kind: tcpstack.IWBytes, Bytes: 4096}, PageLen: 20000, EnoughData: true},
	}

	for i := range cases {
		c := &cases[i]
		n := netsim.New(seed + uint64(i))
		n.SetPath(netsim.PathParams{Delay: 10 * netsim.Millisecond})
		mss := linux
		if c.Stack == "windows" {
			mss = windows
		}
		host := tcpstack.NewHost(n, validationHostAddr, tcpstack.Config{IW: c.IW, MSS: mss})
		host.Listen(80, httpsim.NewServer(httpsim.ServerConfig{Root: httpsim.BehaviorPage, PageLen: c.PageLen, AnyPath: true}))
		sc := core.NewScanner(n, ScannerAddr, core.Config{Seed: seed})
		var got *core.TargetResult
		sc.ProbeTarget(validationHostAddr, core.TargetConfig{Strategy: core.StrategyHTTP, MSSList: []int{64}}, func(tr *core.TargetResult) { got = tr })
		n.RunUntilIdle()

		eff := mss.Effective(64, 1460)
		c.ExpectedIW = (c.IW.IW(eff) + eff - 1) / eff
		c.Outcome = got.Outcome
		c.EstimatedIW = got.IW
		if c.EnoughData {
			c.Correct = got.Outcome == core.OutcomeSuccess && got.IW == c.ExpectedIW
		} else {
			// Insufficient data must NOT produce a (wrong) estimate.
			c.Correct = got.Outcome == core.OutcomeFewData && got.LowerBound <= c.ExpectedIW
		}
	}
	r.Cases = cases

	// Loss sweep on a known IW-10 Linux host serving plenty of data.
	for _, loss := range []float64{0, 0.005, 0.01, 0.02, 0.05} {
		pt := LossSweepPoint{LossRate: loss}
		const runs = 120
		for run := 0; run < runs; run++ {
			n := netsim.New(seed ^ uint64(run)*2654435761 + uint64(loss*1e6))
			n.SetPath(netsim.PathParams{Delay: 10 * netsim.Millisecond, Loss: loss})
			host := tcpstack.NewHost(n, validationHostAddr, tcpstack.Config{IW: segs(10), MSS: linux})
			host.Listen(80, httpsim.NewServer(httpsim.ServerConfig{Root: httpsim.BehaviorPage, PageLen: 8000, AnyPath: true}))
			sc := core.NewScanner(n, ScannerAddr, core.Config{Seed: seed + uint64(run)})
			var got *core.TargetResult
			sc.ProbeTarget(validationHostAddr, core.TargetConfig{Strategy: core.StrategyHTTP, MSSList: []int{64}}, func(tr *core.TargetResult) { got = tr })
			n.RunUntilIdle()

			pt.AggregateRuns++
			if got.Outcome == core.OutcomeSuccess && got.IW == 10 {
				pt.AggregateExact++
			}
			for _, m := range got.PerMSS {
				for _, p := range m.Probes {
					pt.Probes++
					switch {
					case p.Outcome != core.OutcomeSuccess:
						pt.Inconclusive++
					case p.IWSegments() == 10:
						pt.Exact++
					case p.IWSegments() < 10:
						pt.Underestimate++
					default:
						pt.Overestimate++
					}
				}
			}
		}
		r.Loss = append(r.Loss, pt)
	}
	return r
}

// AllCorrect reports whether every ground-truth case validated.
func (r *ValidationResult) AllCorrect() bool {
	for i := range r.Cases {
		if !r.Cases[i].Correct {
			return false
		}
	}
	return true
}

// Render formats the validation outcomes.
func (r *ValidationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.5 validation: estimator vs ground truth in a controlled testbed\n")
	for i := range r.Cases {
		c := &r.Cases[i]
		verdict := "OK"
		if !c.Correct {
			verdict = "WRONG"
		}
		if c.EnoughData {
			fmt.Fprintf(&b, "  %-20s expected IW %-3d estimated IW %-3d (%s) %s\n",
				c.Name, c.ExpectedIW, c.EstimatedIW, c.Outcome, verdict)
		} else {
			fmt.Fprintf(&b, "  %-20s insufficient data -> %s (no estimate emitted) %s\n",
				c.Name, c.Outcome, verdict)
		}
	}
	fmt.Fprintf(&b, "  loss sweep on a Linux IW-10 host (per-probe outcomes; overestimates must be zero):\n")
	for _, pt := range r.Loss {
		fmt.Fprintf(&b, "    loss %4.1f%%: exact %3d  under %3d  over %3d  inconclusive %3d  | 3-probe max rule exact: %d/%d\n",
			100*pt.LossRate, pt.Exact, pt.Underestimate, pt.Overestimate, pt.Inconclusive,
			pt.AggregateExact, pt.AggregateRuns)
	}
	return b.String()
}
