package experiments

import (
	"sync"
	"testing"

	"iwscan/internal/core"
	"iwscan/internal/inet"
)

// TestConcurrentPooledScansStress runs several parallel-sharded scans
// at once — many single-threaded simulations recycling packet buffers
// and events concurrently. Each Network owns its free lists now, so
// under `make race` this is the isolation gate for that split: a buffer
// that escapes one simulator into another's free list, or any leftover
// cross-shard plumbing, surfaces here as a race report or as a
// nondeterministic record set.
func TestConcurrentPooledScansStress(t *testing.T) {
	cfg := ScanConfig{Seed: 31, Strategy: core.StrategyHTTP, SampleFraction: 0.003, MSSList: []int{64}, Repeats: 1}
	want := RunScanParallel(inet.NewInternet2017(77), cfg, 4)

	const runs = 4
	got := make([]*ScanResult, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each run gets its own universe (hosts are per-network state)
			// and every shard of every run its own packet free list.
			got[i] = RunScanParallel(inet.NewInternet2017(77), cfg, 4)
		}(i)
	}
	wg.Wait()

	for i, r := range got {
		if len(r.Records) != len(want.Records) {
			t.Fatalf("run %d: %d records, want %d", i, len(r.Records), len(want.Records))
		}
		for j, rec := range r.Records {
			w := want.Records[j]
			if rec.Addr != w.Addr || rec.Outcome != w.Outcome || rec.IW != w.IW {
				t.Fatalf("run %d record %d: %s/%s/%d, want %s/%s/%d — pooled buffers leaked across scans",
					i, j, rec.Addr, rec.Outcome, rec.IW, w.Addr, w.Outcome, w.IW)
			}
		}
	}
}
