package experiments

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"iwscan/internal/checkpoint"
	"iwscan/internal/core"
	"iwscan/internal/flight"
	"iwscan/internal/inet"
	"iwscan/internal/wire"
)

// TestFlightRecorderDoesNotPerturbScan is the golden-scan guarantee
// end to end: a scan with the flight recorder armed (freezing every
// probe) must produce record-for-record identical results to the same
// scan without it — no RNG draws, no event reordering.
func TestFlightRecorderDoesNotPerturbScan(t *testing.T) {
	u := inet.NewInternet2017(77)
	base := ScanConfig{Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.002}

	bare := RunScan(u, base)

	armed := base
	armed.Flight = flight.NewRecorder(flight.Config{Triggers: map[string]bool{"all": true}})
	rec := RunScan(u, armed)

	if len(bare.Records) != len(rec.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(bare.Records), len(rec.Records))
	}
	for i := range bare.Records {
		if bare.Records[i] != rec.Records[i] {
			t.Fatalf("record %d differs with recorder armed:\nbare: %+v\narmed: %+v",
				i, bare.Records[i], rec.Records[i])
		}
	}
	if bare.Net != rec.Net {
		t.Fatalf("network stats differ:\nbare: %+v\narmed: %+v", bare.Net, rec.Net)
	}
	if armed.Flight.TotalFrozen() != int64(len(rec.Records)) {
		t.Fatalf("froze %d records for %d probes under the 'all' trigger",
			armed.Flight.TotalFrozen(), len(rec.Records))
	}
}

// TestFlightFreezeCapturesAllLayers checks frozen records carry a
// correlated multi-layer timeline. The default classifier (no
// FlightClassify) uses the scan's own outcome taxa as verdicts; the
// oracle-joined variant lives in internal/validate to avoid an import
// cycle.
func TestFlightFreezeCapturesAllLayers(t *testing.T) {
	u := inet.NewInternet2017(77)
	fr := flight.NewRecorder(flight.Config{Triggers: map[string]bool{"success": true}})
	res := RunScan(u, ScanConfig{
		Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.002, Flight: fr,
	})
	if fr.TotalFrozen() == 0 {
		t.Fatalf("no success records frozen across %d probes", len(res.Records))
	}
	for _, rec := range fr.Records() {
		if rec.Verdict != "success" || rec.Trigger != "verdict" {
			t.Fatalf("record = verdict %q trigger %q", rec.Verdict, rec.Trigger)
		}
		kinds := map[string]bool{}
		for _, ev := range rec.Events {
			kinds[ev.Type] = true
		}
		// A successful probe's timeline spans every layer: netsim packet
		// ops, scanner phases and steps, segment classifications, the
		// server stack's annotations, and the closing verdict.
		for _, want := range []string{"phase", "packet", "step", "segment", "stack", "verdict"} {
			if !kinds[want] {
				t.Fatalf("record for %s has no %q events: kinds %v", rec.Target, want, kinds)
			}
		}
		if rec.EndedNS <= rec.BeganNS {
			t.Fatalf("record for %s spans nothing: [%d, %d]", rec.Target, rec.BeganNS, rec.EndedNS)
		}
	}
}

func TestFlightConfigInCheckpointFingerprint(t *testing.T) {
	fp := func(c ScanConfig) string {
		return checkpoint.FingerprintFields(c.configFields(2017, 1<<20))
	}
	base := ScanConfig{Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.01}
	plain := fp(base)

	armed := base
	armed.Flight = flight.NewRecorder(flight.Config{Triggers: map[string]bool{"ghost": true}})
	if fp(armed) == plain {
		t.Fatal("arming the flight recorder does not change the checkpoint fingerprint")
	}

	other := base
	other.Flight = flight.NewRecorder(flight.Config{Triggers: map[string]bool{"missed": true}})
	if fp(other) == fp(armed) {
		t.Fatal("different trigger sets share a checkpoint fingerprint")
	}
}

func TestParallelFlightRejectedDebugAllowed(t *testing.T) {
	u := inet.NewInternet2017(77)
	cfg := ScanConfig{
		Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.001,
		Flight: flight.NewRecorder(flight.Config{}),
	}
	if _, err := RunScanParallelChecked(u, cfg, 2); err == nil ||
		!strings.Contains(err.Error(), "per scan instance") {
		t.Fatalf("parallel scan with flight recorder: err = %v, want rejection", err)
	}
	// The debug server, by contrast, is shard-aware: a parallel scan
	// attaches one registry per shard and /metrics serves their merge.
	cfg.Flight = nil
	cfg.Debug = flight.NewDebugServer()
	res, err := RunScanParallelChecked(u, cfg, 2)
	if err != nil {
		t.Fatalf("parallel scan with debug server: %v", err)
	}
	req := httptest.NewRequest("GET", "/metrics.json", nil)
	rw := httptest.NewRecorder()
	cfg.Debug.Handler().ServeHTTP(rw, req)
	if rw.Code != 200 {
		t.Fatalf("/metrics.json after parallel scan: HTTP %d", rw.Code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &snap); err != nil {
		t.Fatalf("parsing merged snapshot: %v", err)
	}
	if got := snap.Counters["engine.launched"]; got != res.Engine.Launched {
		t.Fatalf("merged snapshot launched = %d, want cross-shard sum %d", got, res.Engine.Launched)
	}
}

// TestFlightTraceHostFreezesRegardless pins the -trace-host path: the
// probed host freezes on any verdict, others do not.
func TestFlightTraceHostFreezesRegardless(t *testing.T) {
	u := inet.NewInternet2017(77)
	probe := RunScan(u, ScanConfig{Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.001})
	if len(probe.Records) == 0 {
		t.Skip("sample too small")
	}
	chosen := probe.Records[0].Addr
	fr := flight.NewRecorder(flight.Config{TraceHosts: map[wire.Addr]bool{chosen: true}})
	RunScan(u, ScanConfig{
		Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.001, Flight: fr,
	})
	if fr.TotalFrozen() != 1 {
		t.Fatalf("froze %d records, want exactly the traced host", fr.TotalFrozen())
	}
	rec := fr.Records()[0]
	if rec.Target != chosen.String() || rec.Trigger != "host" {
		t.Fatalf("record = %s trigger %s, want %s via host trigger", rec.Target, rec.Trigger, chosen)
	}
}
