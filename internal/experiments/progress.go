package experiments

import (
	"fmt"
	"io"
	"time"

	"iwscan/internal/metrics"
	"iwscan/internal/netsim"
	"iwscan/internal/scanner"
	"iwscan/internal/timeseries"
)

// statusTick is the virtual-time cadence at which the reporter checks
// the wall clock. The simulation usually runs much faster than real
// time, so the wall-clock interval — not this tick — paces the output.
const statusTick = 250 * netsim.Millisecond

// statusReporter prints ZMap-style one-line progress to w while a scan
// runs: percent done, probe rates in virtual and wall time, hit rate
// (handshakes completed per probe started), and the in-flight level.
// It rides the simulation as a recurring virtual timer and stops when
// the engine finishes, so it never keeps RunUntilIdle alive.
type statusReporter struct {
	w        io.Writer
	net      *netsim.Network
	eng      *scanner.Engine
	label    string
	interval time.Duration

	synAcks   *metrics.Counter
	probes    *metrics.Counter
	ts        *timeseries.Store
	wallStart time.Time
	lastWall  time.Time
	lastSent  int64
	timer     *netsim.Timer
	stopped   bool
}

// startStatusReporter arms the reporter; call stop() when the scan
// completes (it prints one final line so short scans still report).
// With a timeseries store attached the line also carries the live
// anomaly tally.
func startStatusReporter(w io.Writer, n *netsim.Network, eng *scanner.Engine, label string, interval time.Duration, ts *timeseries.Store) *statusReporter {
	now := time.Now()
	r := &statusReporter{
		w:         w,
		net:       n,
		eng:       eng,
		label:     label,
		interval:  interval,
		synAcks:   n.Metrics().Counter("core.synacks"),
		probes:    n.Metrics().Counter("core.probes_started"),
		ts:        ts,
		wallStart: now,
		lastWall:  now,
	}
	r.timer = n.After(statusTick, r.tick)
	return r
}

func (r *statusReporter) tick() {
	if r.stopped {
		return
	}
	if wall := time.Now(); wall.Sub(r.lastWall) >= r.interval {
		r.print(wall)
	}
	r.timer = r.net.After(statusTick, r.tick)
}

func (r *statusReporter) stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	r.timer.Cancel()
	r.print(time.Now())
}

func (r *statusReporter) print(wall time.Time) {
	st := r.eng.Stats()
	virtElapsed := r.net.Now() - st.StartedAt

	pct := 0.0
	if est := r.eng.TargetEstimate(); est > 0 {
		pct = 100 * float64(st.Launched) / float64(est)
		if pct > 100 {
			pct = 100
		}
	}
	virtRate := 0.0
	if virtElapsed > 0 {
		virtRate = float64(st.Launched) / virtElapsed.Seconds()
	}
	wallRate := 0.0
	if dt := wall.Sub(r.lastWall).Seconds(); dt > 0 {
		wallRate = float64(st.Launched-r.lastSent) / dt
	}
	hit := 0.0
	if p := r.probes.Value(); p > 0 {
		hit = 100 * float64(r.synAcks.Value()) / float64(p)
	}
	inFlight := st.Launched - st.Completed

	anom := ""
	if r.ts != nil {
		if total, _, last := r.ts.AnomalySummary(); total > 0 {
			anom = fmt.Sprintf(" | anomalies %d (last: %s)", total, last.Kind)
		}
	}

	fmt.Fprintf(r.w, "%s%s wall %v virt | %5.1f%% done | send %d (%s virt, %s wall) | hit %.1f%% | in-flight %d%s\n",
		r.label, fmtWall(wall.Sub(r.wallStart)), virtElapsed, pct,
		st.Launched, fmtRate(virtRate), fmtRate(wallRate), hit, inFlight, anom)

	r.lastWall = wall
	r.lastSent = st.Launched
}

// fmtWall renders a wall duration as m:ss, ZMap-style.
func fmtWall(d time.Duration) string {
	s := int(d.Seconds())
	return fmt.Sprintf("%d:%02d", s/60, s%60)
}

// fmtRate renders a probe rate with a k/M suffix.
func fmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1f Mp/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1f kp/s", r/1e3)
	default:
		return fmt.Sprintf("%.0f p/s", r)
	}
}
