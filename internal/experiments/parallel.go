package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"iwscan/internal/inet"
	"iwscan/internal/output"
	"iwscan/internal/timeseries"
)

// RunScanParallel runs one logical scan as several ZMap-style shards,
// each a fully independent simulator — its own virtual clock, event
// heap, RNG, packet/event pools and metrics registry — on its own
// OS-thread-pinned goroutine, and merges the results. The shards
// partition the permutation exactly, so the merged record set equals a
// single-instance scan of the same space; only wall-clock time
// changes. This mirrors how the paper's scans would be distributed
// across machines. It panics on configuration errors; prefer
// RunScanParallelChecked when using sinks.
func RunScanParallel(u *inet.Universe, cfg ScanConfig, shards int) *ScanResult {
	res, err := RunScanParallelChecked(u, cfg, shards)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// RunScanParallelChecked is RunScanParallel with error reporting. When
// cfg.Sink is set, the shards stream concurrently through a k-way merge
// keyed by global permutation position, so the sink receives one
// ordered stream — byte-identical to what an unsharded scan would
// write — without any shard accumulating its records.
//
// Concurrency model: each shard's RunScanChecked builds a private
// netsim.Network, so nothing mutable is shared between the event
// loops — the universe is a pure function of (seed, address), and
// hosts materialize into the per-shard network's node table. The only
// cross-shard interactions are the bounded k-way output.Merge, the
// (mutex-guarded) timeseries store and debug-server attach points, and
// the final stats fold after Wait. Each loop is pinned to an OS thread
// for its lifetime so the kernel can schedule the shards onto distinct
// cores; per-shard output is byte-identical for any GOMAXPROCS and any
// interleaving (the determinism matrix test in this package holds the
// engine to that).
func RunScanParallelChecked(u *inet.Universe, cfg ScanConfig, shards int) (*ScanResult, error) {
	if shards <= 1 {
		return RunScanChecked(u, cfg)
	}
	if cfg.Flight != nil {
		// The flight recorder is bound to one simulation's observer slot
		// and one scanner; shards would race on it. Forensics are a
		// serial-scan tool. The debug server, by contrast, is shard-aware
		// (per-shard registries merged at snapshot time), so -debug-addr
		// and telemetry work fine under parallel.
		return nil, fmt.Errorf("the flight recorder is per scan instance; run serially or shard across separate runs")
	}
	if len(cfg.Filters) > 0 {
		// A netsim.Filter may keep per-flow state (TailLossFilter does);
		// sharing one instance across concurrently running simulations is
		// a data race. FilterFactories builds a fresh instance per shard.
		return nil, fmt.Errorf("cfg.Filters would be shared across concurrent shards; use FilterFactories instead")
	}
	if cfg.CheckpointPath != "" || cfg.Resume != nil {
		// A checkpoint cursor is consistent with one engine's own output
		// frontier; in-process parallel shards share one sink whose
		// durability lags individual frontiers. Distribute with
		// Shard/Shards across processes instead — each instance then
		// checkpoints (and resumes) its own slice, ZMap-style.
		return nil, fmt.Errorf("checkpointing is per scan instance; use Shard/Shards across separate runs instead of Parallel")
	}
	var merge *output.Merge
	var handles []output.Sink
	if cfg.Sink != nil {
		merge, handles = output.NewMerge(cfg.Sink, shards)
	}
	results := make([]*ScanResult, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			// One OS thread per shard event loop: the loop is a long-running
			// CPU-bound goroutine, and pinning it keeps the Go scheduler from
			// migrating it between Ps mid-scan (migration cost and cache
			// churn were part of the PR 6 contention diagnosis). Unpinning
			// happens implicitly when the goroutine exits.
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			c := cfg
			c.Shard = uint64(shard)
			c.Shards = uint64(shards)
			if handles != nil {
				c.Sink = handles[shard]
			}
			if c.StatusOut != nil && c.StatusInterval > 0 {
				// All shards progress in lockstep through the same space,
				// so one reporting shard (tagged) tells the whole story
				// without interleaving N writers on one stream.
				if shard == 0 {
					c.StatusLabel = fmt.Sprintf("[shard 0/%d] ", shards)
				} else {
					c.StatusOut = nil
				}
			}
			results[shard], errs[shard] = RunScanChecked(u, c)
			if handles != nil {
				if err := handles[shard].Close(); err != nil && errs[shard] == nil {
					errs[shard] = err
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// The k-way merge's wait accounting tells the telemetry layer which
	// shard the output stream was pacing behind.
	if merge != nil && cfg.Timeseries != nil {
		waits := merge.WaitStats()
		tw := make([]timeseries.MergeWait, len(waits))
		for i, w := range waits {
			tw[i] = timeseries.MergeWait{
				Shard: w.Shard, Writes: w.Writes, MaxQueued: w.MaxQueued,
				Stalls: w.Stalls, BlockedNS: w.BlockedNS,
			}
		}
		cfg.Timeseries.SetMergeWaits(tw)
	}

	merged := &ScanResult{}
	for _, r := range results {
		merged.ShardEngines = append(merged.ShardEngines, r.Engine)
		merged.Records = append(merged.Records, r.Records...)
		merged.Engine.Launched += r.Engine.Launched
		merged.Engine.Completed += r.Engine.Completed
		merged.Engine.Skipped += r.Engine.Skipped
		merged.Engine.Retries += r.Engine.Retries
		merged.Net.PacketsSent += r.Net.PacketsSent
		merged.Net.PacketsDelivered += r.Net.PacketsDelivered
		merged.Net.PacketsDuplicated += r.Net.PacketsDuplicated
		merged.Net.PacketsReordered += r.Net.PacketsReordered
		merged.Net.PacketsLost += r.Net.PacketsLost
		merged.Net.PacketsFiltered += r.Net.PacketsFiltered
		merged.Net.PacketsNoRoute += r.Net.PacketsNoRoute
		merged.Net.PacketsMTUDrop += r.Net.PacketsMTUDrop
		merged.Net.PacketsQueueDrop += r.Net.PacketsQueueDrop
		merged.Net.BytesSent += r.Net.BytesSent
		merged.Net.BytesDelivered += r.Net.BytesDelivered
		merged.Scan.ProbesStarted += r.Scan.ProbesStarted
		merged.Scan.SynAcks += r.Scan.SynAcks
		merged.Scan.PacketsSent += r.Scan.PacketsSent
		merged.Scan.PacketsRcvd += r.Scan.PacketsRcvd
		merged.Scan.Retransmits += r.Scan.Retransmits
		merged.Scan.VerifyReleases += r.Scan.VerifyReleases
		merged.Metrics.Merge(r.Metrics)
		if r.VirtualTime > merged.VirtualTime {
			merged.VirtualTime = r.VirtualTime // shards run concurrently
		}
		if r.MaxBuffered > merged.MaxBuffered {
			merged.MaxBuffered = r.MaxBuffered
		}
	}
	if merge != nil {
		// Shard reorder buffers and the merge queues never hold the
		// record set; report their combined high-water mark.
		merged.MaxBuffered += merge.MaxPending()
	}
	// Deterministic output order regardless of shard scheduling.
	sort.Slice(merged.Records, func(i, j int) bool {
		return merged.Records[i].Addr < merged.Records[j].Addr
	})
	return merged, nil
}
