package experiments

import (
	"fmt"
	"sort"
	"sync"

	"iwscan/internal/inet"
)

// RunScanParallel runs one logical scan as several ZMap-style shards,
// each in its own deterministic simulation on its own goroutine, and
// merges the results. The shards partition the permutation exactly, so
// the merged record set equals a single-instance scan of the same
// space; only wall-clock time changes. This mirrors how the paper's
// scans would be distributed across machines.
func RunScanParallel(u *inet.Universe, cfg ScanConfig, shards int) *ScanResult {
	if shards <= 1 {
		return RunScan(u, cfg)
	}
	results := make([]*ScanResult, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			c := cfg
			c.Shard = uint64(shard)
			c.Shards = uint64(shards)
			if c.StatusOut != nil && c.StatusInterval > 0 {
				// All shards progress in lockstep through the same space,
				// so one reporting shard (tagged) tells the whole story
				// without interleaving N writers on one stream.
				if shard == 0 {
					c.StatusLabel = fmt.Sprintf("[shard 0/%d] ", shards)
				} else {
					c.StatusOut = nil
				}
			}
			results[shard] = RunScan(u, c)
		}(i)
	}
	wg.Wait()

	merged := &ScanResult{}
	for _, r := range results {
		merged.Records = append(merged.Records, r.Records...)
		merged.Engine.Launched += r.Engine.Launched
		merged.Engine.Completed += r.Engine.Completed
		merged.Engine.Skipped += r.Engine.Skipped
		merged.Net.PacketsSent += r.Net.PacketsSent
		merged.Net.PacketsDelivered += r.Net.PacketsDelivered
		merged.Net.PacketsDuplicated += r.Net.PacketsDuplicated
		merged.Net.PacketsLost += r.Net.PacketsLost
		merged.Net.PacketsFiltered += r.Net.PacketsFiltered
		merged.Net.PacketsNoRoute += r.Net.PacketsNoRoute
		merged.Net.PacketsMTUDrop += r.Net.PacketsMTUDrop
		merged.Net.PacketsQueueDrop += r.Net.PacketsQueueDrop
		merged.Net.BytesSent += r.Net.BytesSent
		merged.Net.BytesDelivered += r.Net.BytesDelivered
		merged.Scan.ProbesStarted += r.Scan.ProbesStarted
		merged.Scan.SynAcks += r.Scan.SynAcks
		merged.Scan.PacketsSent += r.Scan.PacketsSent
		merged.Scan.PacketsRcvd += r.Scan.PacketsRcvd
		merged.Scan.Retransmits += r.Scan.Retransmits
		merged.Scan.VerifyReleases += r.Scan.VerifyReleases
		merged.Metrics.Merge(r.Metrics)
		if r.VirtualTime > merged.VirtualTime {
			merged.VirtualTime = r.VirtualTime // shards run concurrently
		}
	}
	// Deterministic output order regardless of shard scheduling.
	sort.Slice(merged.Records, func(i, j int) bool {
		return merged.Records[i].Addr < merged.Records[j].Addr
	})
	return merged
}
