package experiments

import (
	"fmt"
	"sort"
	"strings"

	"iwscan/internal/analysis"
	"iwscan/internal/core"
	"iwscan/internal/inet"
	"iwscan/internal/netsim"
	"iwscan/internal/scanner"
	"iwscan/internal/wire"
)

// AkamaiServicesResult reproduces the §4.3 observation that CDN edges
// run per-service (even per-customer) IW configurations: probing a
// curated list of Akamai-hosted site names — the targeted-scan mode the
// paper sketches as future work — reveals several distinct IW values on
// one provider's infrastructure, where the IP-only Internet-wide scan
// sees mostly "few data".
type AkamaiServicesResult struct {
	Sites        int
	BlindSuccess float64 // IP-only probing success on the same hosts
	ArmedSuccess float64 // with curated hostnames
	IWValues     map[int]int
}

// AkamaiServices probes n Akamai edge hosts twice: blind (IP only, like
// the Internet-wide scan) and armed with valid hostnames.
func AkamaiServices(u *inet.Universe, seed uint64, n int) *AkamaiServicesResult {
	if n <= 0 {
		n = 300
	}
	var akamai *inet.AS
	for _, as := range u.ASes {
		if as.Name == "Akamai" {
			akamai = as
		}
	}
	if akamai == nil {
		return &AkamaiServicesResult{}
	}
	// Collect live HTTP edges via the scan permutation.
	p := akamai.Prefixes[0]
	cyc := scanner.NewCycle(p.Size(), seed)
	var targets []wire.Addr
	for len(targets) < n {
		idx, ok := cyc.Next()
		if !ok {
			break
		}
		addr := p.Nth(idx)
		if spec := u.HostAt(addr); spec != nil && spec.HTTPLive {
			targets = append(targets, addr)
		}
	}

	res := &AkamaiServicesResult{Sites: len(targets), IWValues: make(map[int]int)}
	run := func(withName bool) []analysis.Record {
		net := netsim.New(seed)
		net.SetPath(netsim.PathParams{Delay: 10 * netsim.Millisecond})
		net.SetFactory(u)
		sc := core.NewScanner(net, ScannerAddr, core.Config{Seed: seed})
		var records []analysis.Record
		for i, addr := range targets {
			tc := core.TargetConfig{Strategy: core.StrategyHTTP, MSSList: []int{64}}
			if withName {
				tc.SNI = fmt.Sprintf("customer-%d.akamai-site.example", i)
			}
			sc.ProbeTarget(addr, tc, func(tr *core.TargetResult) {
				records = append(records, analysis.FromTarget(tr))
			})
		}
		net.RunUntilIdle()
		return records
	}

	blind := run(false)
	armed := run(true)
	res.BlindSuccess = analysis.Table1(blind).Success
	res.ArmedSuccess = analysis.Table1(armed).Success
	for i := range armed {
		if armed[i].Outcome == core.OutcomeSuccess {
			res.IWValues[armed[i].IW]++
		}
	}
	return res
}

// Render formats the per-service customization finding.
func (r *AkamaiServicesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.3: Akamai per-service IW customization (%d edge hosts)\n", r.Sites)
	fmt.Fprintf(&b, "  IP-only probing success: %.1f%% (error pages expose only the small-IW edges)\n", 100*r.BlindSuccess)
	fmt.Fprintf(&b, "  hostname-armed success:  %.1f%% (the curated-URL mode the paper proposes)\n", 100*r.ArmedSuccess)
	iws := make([]int, 0, len(r.IWValues))
	for iw := range r.IWValues {
		iws = append(iws, iw)
	}
	sort.Ints(iws)
	fmt.Fprintf(&b, "  distinct per-service IW configurations found:")
	for _, iw := range iws {
		fmt.Fprintf(&b, " IW%d:%d", iw, r.IWValues[iw])
	}
	fmt.Fprintf(&b, "\n  (paper: manual probing of Akamai-hosted sites found e.g. IW 16 and IW 32)\n")
	return b.String()
}
