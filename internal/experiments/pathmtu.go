package experiments

import (
	"fmt"
	"strings"

	"iwscan/internal/icmpsim"
	"iwscan/internal/inet"
	"iwscan/internal/netsim"
	"iwscan/internal/scanner"
	"iwscan/internal/stats"
	"iwscan/internal/wire"
)

// PathMTUResult reproduces footnote 1: an RFC 1191 ICMP path-MTU
// discovery sweep, from which the supported-MSS distribution is derived
// (the paper: 99% of hosts support MSS 1336, 80% support MSS 1436).
type PathMTUResult struct {
	Probed      int
	Discovered  int
	MSS1336Frac float64 // fraction of discovered paths with MSS >= 1336
	MSS1436Frac float64
	MTUHist     map[int]int
}

// pathMTUFor models per-destination path MTUs: most paths carry full
// 1500-byte frames; a fifth sit behind tunnels (PPPoE, IPsec) that
// shave tens of bytes; a sliver is legacy-constrained.
func pathMTUFor(seed uint64, dst wire.Addr) int {
	h := stats.HashIP64(seed^0x9a7e, uint32(dst))
	u := float64(h>>11) / (1 << 53)
	switch {
	case u < 0.80:
		return 1500 // MSS 1460
	case u < 0.99:
		// Tunnel overheads (PPPoE+, GRE, IPsec): all below 1476, so
		// these paths support MSS 1336 but not 1436.
		opts := []int{1472, 1454, 1430, 1400}
		return opts[h%4]
	default:
		opts := []int{1006, 576, 1280}
		return opts[h%3]
	}
}

// PathMTU sweeps a sample of live hosts with the RFC 1191 prober.
func PathMTU(u *inet.Universe, seed uint64, targets int) *PathMTUResult {
	if targets <= 0 {
		targets = 2000
	}
	n := netsim.New(seed)
	n.SetFactory(u)
	proberAddr := wire.MustParseAddr("198.18.0.2")
	n.SetPathFunc(func(src, dst wire.Addr) netsim.PathParams {
		p := netsim.PathParams{Delay: 10 * netsim.Millisecond}
		// The MTU constraint binds on the forward path toward targets.
		if dst != proberAddr {
			p.MTU = pathMTUFor(seed, dst)
		}
		return p
	})
	prober := icmpsim.NewProber(n, proberAddr)

	// Walk the universe for live hosts with the same permutation the
	// scanner uses.
	space := scanner.NewSpaceFromPrefixes(u.Prefixes())
	cyc := scanner.NewCycle(space.Size(), seed)
	res := &PathMTUResult{MTUHist: make(map[int]int)}
	for res.Probed < targets {
		idx, ok := cyc.Next()
		if !ok {
			break
		}
		addr := space.At(idx)
		if spec := u.HostAt(addr); spec == nil {
			continue
		}
		res.Probed++
		prober.Discover(addr, 1500, func(r icmpsim.Result) {
			if !r.OK {
				return
			}
			res.Discovered++
			res.MTUHist[r.MTU]++
			if r.MSS >= 1336 {
				res.MSS1336Frac++
			}
			if r.MSS >= 1436 {
				res.MSS1436Frac++
			}
		})
	}
	n.RunUntilIdle()
	if res.Discovered > 0 {
		res.MSS1336Frac /= float64(res.Discovered)
		res.MSS1436Frac /= float64(res.Discovered)
	}
	return res
}

// Render formats the footnote-1 result.
func (r *PathMTUResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Footnote 1: RFC 1191 path-MTU discovery over %d live hosts (%d converged)\n",
		r.Probed, r.Discovered)
	fmt.Fprintf(&b, "  MSS >= 1336 supported by %.1f%% of paths (paper: %.0f%%)\n",
		100*r.MSS1336Frac, 100*PaperFigure2.MSS1336Support)
	fmt.Fprintf(&b, "  MSS >= 1436 supported by %.1f%% of paths (paper: %.0f%%)\n",
		100*r.MSS1436Frac, 100*PaperFigure2.MSS1436Support)
	fmt.Fprintf(&b, "  path MTU histogram:")
	for _, mtu := range []int{576, 1006, 1280, 1400, 1454, 1476, 1492, 1500} {
		if c := r.MTUHist[mtu]; c > 0 {
			fmt.Fprintf(&b, " %d:%d", mtu, c)
		}
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}
