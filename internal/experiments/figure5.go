package experiments

import (
	"fmt"
	"strings"

	"iwscan/internal/analysis"
	"iwscan/internal/inet"
)

// Figure5Result reproduces the AS-level DBSCAN clustering of IW mixes.
type Figure5Result struct {
	HTTPFeatures []analysis.ASFeature
	HTTPClusters []analysis.Cluster
	TLSFeatures  []analysis.ASFeature
	TLSClusters  []analysis.Cluster
	// Representatives are the per-AS IW mixes the right-hand side of
	// Figure 5 shows.
	Representatives []analysis.ASFeature
}

// figure5Reps are the networks Figure 5 calls out.
var figure5Reps = []string{
	"AmazonEC2", "Comcast", "GoDaddy", "NatIntBackbone",
	"Cloudflare", "VodafoneIT", "Akamai", "KoreaTel",
}

// Figure5 clusters ASes by their IW mix with DBSCAN (eps and minPts as
// reasonable defaults for the 5-dim fraction space).
func (s *Suite) Figure5() *Figure5Result {
	httpFeats := analysis.ASFeatures(s.HTTPScan().Records, 30)
	tlsFeats := analysis.ASFeatures(s.TLSScan().Records, 30)
	httpLabels := analysis.DBSCAN(httpFeats, 0.25, 2)
	tlsLabels := analysis.DBSCAN(tlsFeats, 0.25, 2)
	r := &Figure5Result{
		HTTPFeatures: httpFeats,
		HTTPClusters: analysis.Clusters(httpFeats, httpLabels),
		TLSFeatures:  tlsFeats,
		TLSClusters:  analysis.Clusters(tlsFeats, tlsLabels),
	}
	for _, name := range figure5Reps {
		for _, f := range httpFeats {
			if f.Name == name {
				r.Representatives = append(r.Representatives, f)
			}
		}
	}
	return r
}

// Render formats clusters and representative ASes.
func (r *Figure5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: DBSCAN clustering of ASes by IW mix (IW1/2/4/10/other)\n")
	render := func(name string, clusters []analysis.Cluster) {
		fmt.Fprintf(&b, "  %s clusters:\n", name)
		for _, c := range clusters {
			fmt.Fprintf(&b, "    cluster %d: %2d ASes, %6d hosts, dominant %-5s centroid [%.2f %.2f %.2f %.2f %.2f]\n",
				c.Label, len(c.ASes), c.Hosts, analysis.DominantIWOfCluster(c),
				c.Centroid[0], c.Centroid[1], c.Centroid[2], c.Centroid[3], c.Centroid[4])
		}
	}
	render("HTTP", r.HTTPClusters)
	render("TLS", r.TLSClusters)
	fmt.Fprintf(&b, "  representative ASes (HTTP IW mix IW1/IW2/IW4/IW10/other):\n")
	for _, f := range r.Representatives {
		fmt.Fprintf(&b, "    %-15s AS%-6d %5d hosts [%.2f %.2f %.2f %.2f %.2f]\n",
			f.Name, f.ASN, f.Hosts, f.Vec[0], f.Vec[1], f.Vec[2], f.Vec[3], f.Vec[4])
	}
	return b.String()
}

// Table3Result reproduces the per-service IW distribution.
type Table3Result struct {
	HTTP []analysis.ServiceRow
	TLS  []analysis.ServiceRow
	// Coverage reports the rDNS classification inputs (§4.3).
	HTTPCoverage analysis.RDNSCoverage
	TLSCoverage  analysis.RDNSCoverage
}

// Table3 classifies the full scans by published IP ranges (the cloud and
// CDN networks) and by reverse-DNS heuristics (access networks).
func (s *Suite) Table3() *Table3Result {
	sc := analysis.NewServiceClassifier()
	// Published provider ranges, as the paper uses (e.g. the AWS
	// ip-ranges.json); in the model these are the AS prefixes.
	for _, spec := range []struct{ name, as string }{
		{"Akamai", "Akamai"}, {"EC2", "AmazonEC2"},
		{"Cloudflare", "Cloudflare"}, {"Azure", "Azure"},
	} {
		for _, as := range s.Universe.ASes {
			if as.Name == spec.as {
				sc.AddRange(spec.name, as.Prefixes...)
			}
		}
	}
	// Access ISP domains for the rDNS match.
	for _, as := range s.Universe.ASes {
		if as.Class == inet.ClassAccess {
			sc.AddISPDomain(as.Domain)
		}
	}
	return &Table3Result{
		HTTP:         sc.Table3(s.HTTPScan().Records),
		TLS:          sc.Table3(s.TLSScan().Records),
		HTTPCoverage: sc.Coverage(s.HTTPScan().Records),
		TLSCoverage:  sc.Coverage(s.TLSScan().Records),
	}
}

// Render formats Table 3.
func (r *Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: per-service IW distribution [%% of the service's successful hosts]\n")
	fmt.Fprintf(&b, "  %-11s | %28s | %28s\n", "Service", "HTTP IW1/IW2/IW4/IW10", "TLS IW1/IW2/IW4/IW10")
	byName := func(rows []analysis.ServiceRow, name string) *analysis.ServiceRow {
		for i := range rows {
			if rows[i].Service == name {
				return &rows[i]
			}
		}
		return nil
	}
	for _, svc := range []string{"Akamai", "EC2", "Cloudflare", "Azure", "Access NW"} {
		h, t := byName(r.HTTP, svc), byName(r.TLS, svc)
		cell := func(row *analysis.ServiceRow) string {
			if row == nil {
				return "          —"
			}
			return fmt.Sprintf("%5.1f %5.1f %5.1f %5.1f", 100*row.IW[1], 100*row.IW[2], 100*row.IW[4], 100*row.IW[10])
		}
		fmt.Fprintf(&b, "  %-11s | %28s | %28s\n", svc, cell(h), cell(t))
	}
	fmt.Fprintf(&b, "  rDNS coverage: HTTP %.1f%% IP-encoded (paper 38.6%%), %.1f%% access (paper 16%%)\n",
		100*r.HTTPCoverage.IPEncoded, 100*r.HTTPCoverage.Access)
	fmt.Fprintf(&b, "                 TLS  %.1f%% IP-encoded (paper 62.5%%), %.1f%% access (paper 18.1%%)\n",
		100*r.TLSCoverage.IPEncoded, 100*r.TLSCoverage.Access)
	return b.String()
}
