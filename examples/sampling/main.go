// Sampling demo (§4.1): "scanning 1% is enough".
//
// Runs one sizeable HTTP scan of the simulated Internet, then draws
// random subsamples of shrinking size and compares their IW
// distributions against the full result: even small samples reproduce
// the distribution, so Internet-wide probing can cut its footprint by
// two orders of magnitude.
//
//	go run ./examples/sampling
package main

import (
	"fmt"

	"iwscan/internal/analysis"
	"iwscan/internal/core"
	"iwscan/internal/experiments"
	"iwscan/internal/inet"
)

func main() {
	u := inet.NewInternet2017(2017)
	fmt.Println("scanning 30% of the simulated IPv4 space over HTTP...")
	res := experiments.RunScan(u, experiments.ScanConfig{
		Seed: 5, Strategy: core.StrategyHTTP, SampleFraction: 0.30,
	})
	full := analysis.IWDistribution(res.Records)
	fmt.Printf("full scan: %d reachable, %d successful\n",
		analysis.Table1(res.Records).Reachable, analysis.SuccessCount(res.Records))
	fmt.Printf("  %s\n\n", analysis.FormatDistribution(filter(full)))

	for _, f := range []float64{0.5, 0.3, 0.1, 0.03, 0.01} {
		sub := analysis.Subsample(res.Records, f, 99)
		dist := analysis.IWDistribution(sub)
		fmt.Printf("%5.0f%% subsample (%6d records): max deviation %.2fpp\n",
			100*f, len(sub), 100*analysis.MaxDeviation(res.Records, sub, 0.01))
		fmt.Printf("       %s\n", analysis.FormatDistribution(filter(dist)))
	}

	fmt.Println("\n30 independent 1% samples — per-IW spread across replicates:")
	for _, st := range analysis.SubsampleReplicates(res.Records, 0.01, 30, 7, 0.05) {
		fmt.Printf("  IW%-3d full %5.2f%%  replicate mean %5.2f%%  band [%5.2f%%, %5.2f%%]\n",
			st.IW, 100*st.FullFrac, 100*st.Mean, 100*st.Q01, 100*st.Q99)
	}
}

// filter keeps the distribution readable: only IWs above 0.5%.
func filter(dist map[int]float64) map[int]float64 {
	out := make(map[int]float64)
	for iw, f := range dist {
		if f >= 0.005 {
			out[iw] = f
		}
	}
	return out
}
