// Validation testbed (§3.5): estimator vs ground truth, and the effect
// of packet loss.
//
// Hosts with known IW configurations (including Windows' MSS fallback
// and a byte-configured IW) are probed in a controlled network; the
// estimates must equal the configured values whenever enough data is
// available. A loss sweep then shows the paper's asymmetry: loss can
// make a probe fail or underestimate (tail loss), but never
// overestimate — and the 3-probe maximum rule recovers most runs.
//
//	go run ./examples/validation
package main

import (
	"fmt"

	"iwscan/internal/experiments"
)

func main() {
	r := experiments.Validation(1234)
	fmt.Print(r.Render())
	if r.AllCorrect() {
		fmt.Println("\nall ground-truth cases validated: the estimator is exact when data suffices")
	} else {
		fmt.Println("\nVALIDATION FAILED — see the table above")
	}
}
