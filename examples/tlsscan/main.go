// TLS scan walkthrough: certificate chains as free probe payload (§3.3).
//
// The server's first flight (ServerHello, Certificate, ServerHelloDone)
// is sent before any client secret is needed, and the chain dominates
// its size — so a ClientHello is enough to make most hosts transmit a
// full initial window. The demo probes hosts with different chain
// lengths, an OCSP-stapling host, an SNI-requiring frontend and a host
// without cipher overlap, and prints what each case yields.
//
//	go run ./examples/tlsscan
package main

import (
	"fmt"

	"iwscan/internal/core"
	"iwscan/internal/netsim"
	"iwscan/internal/stats"
	"iwscan/internal/tcpstack"
	"iwscan/internal/tlssim"
	"iwscan/internal/wire"
)

func main() {
	net := netsim.New(3)
	net.SetPath(netsim.PathParams{Delay: 10 * netsim.Millisecond})

	type demo struct {
		name string
		addr wire.Addr
		iw   int
		cfg  tlssim.ServerConfig
	}
	demos := []demo{
		{"long chain (5 kB), IW 10", wire.MustParseAddr("198.51.100.1"), 10,
			tlssim.ServerConfig{Behavior: tlssim.BehaviorServeChain, ChainLen: 5000, Seed: 1}},
		{"long chain (5 kB), IW 25", wire.MustParseAddr("198.51.100.2"), 25,
			tlssim.ServerConfig{Behavior: tlssim.BehaviorServeChain, ChainLen: 5000, Seed: 2}},
		{"short chain (300 B), IW 10", wire.MustParseAddr("198.51.100.3"), 10,
			tlssim.ServerConfig{Behavior: tlssim.BehaviorServeChain, ChainLen: 300, Seed: 3}},
		{"short chain + OCSP staple", wire.MustParseAddr("198.51.100.4"), 10,
			tlssim.ServerConfig{Behavior: tlssim.BehaviorServeChain, ChainLen: 300, OCSPStaple: true, OCSPLen: 2500, Seed: 4}},
		{"requires SNI", wire.MustParseAddr("198.51.100.5"), 10,
			tlssim.ServerConfig{Behavior: tlssim.BehaviorRequireSNI, ChainLen: 5000, Seed: 5}},
		{"no cipher overlap (alert)", wire.MustParseAddr("198.51.100.6"), 10,
			tlssim.ServerConfig{Behavior: tlssim.BehaviorNoCipherOverlap}},
	}

	for _, d := range demos {
		host := tcpstack.NewHost(net, d.addr, tcpstack.Config{
			IW:  tcpstack.IWPolicy{Kind: tcpstack.IWSegments, Segments: d.iw},
			MSS: tcpstack.MSSPolicy{Floor: 64},
		})
		host.Listen(443, tlssim.NewServer(d.cfg))
	}

	scanner := core.NewScanner(net, wire.MustParseAddr("192.0.2.1"), core.Config{Seed: 9})

	fmt.Println("TLS-based IW inference (ClientHello with the 40-suite list + OCSP status_request):")
	for _, d := range demos {
		d := d
		scanner.ProbeTarget(d.addr, core.TargetConfig{Strategy: core.StrategyTLS, MSSList: []int{64}},
			func(tr *core.TargetResult) {
				fmt.Printf("  %-30s -> %s\n", d.name, core.DebugTargetLine(tr))
			})
	}
	net.RunUntilIdle()

	// How much of the Internet can TLS probing measure? Figure 2's
	// arithmetic with the censys-calibrated chain distribution:
	var dist tlssim.ChainLenDist
	rng := stats.NewRNG(1)
	const n = 200000
	okIW10, okIW34 := 0, 0
	for i := 0; i < n; i++ {
		c := dist.SampleHash(rng.Uint64())
		if c >= 10*64 {
			okIW10++
		}
		if c >= 34*64 {
			okIW34++
		}
	}
	fmt.Printf("\nchain-length model (Figure 2): %.1f%% of hosts supply >= 640 B (IW 10 at MSS 64),\n", 100*float64(okIW10)/n)
	fmt.Printf("%.1f%% supply >= 2176 B — still measurable even at IW 34\n", 100*float64(okIW34)/n)
}
