// Motivation demo (§1): why anyone debates the initial window at all.
//
// A normal ACKing TCP client downloads a short page from servers with
// different IW configurations. On a clean path, a larger IW saves whole
// round trips. Behind a low-capacity access link with a shallow buffer,
// the same large IW bursts straight into queue overflow.
//
//	go run ./examples/motivation
package main

import (
	"fmt"

	"iwscan/internal/experiments"
)

func main() {
	r := experiments.Motivation(7)
	fmt.Print(r.Render())

	fmt.Println("\nreading the numbers:")
	var iw1, iw10 float64
	for _, p := range r.FCT {
		switch p.IW {
		case 1:
			iw1 = p.RTTs
		case 10:
			iw10 = p.RTTs
		}
	}
	fmt.Printf("  upgrading IW 1 -> IW 10 saves %.0f round trips on this page —\n", iw1-iw10)
	fmt.Printf("  at 50 ms RTT that is %.0f ms off every page load.\n", (iw1-iw10)*50)
	for _, p := range r.Burst {
		if p.QueueDrops > 0 {
			fmt.Printf("  but at IW %d the burst already overflows a 2 Mbit/s link's buffer (%d drops).\n",
				p.IW, p.QueueDrops)
			break
		}
	}
	fmt.Println("  hence RFC 6928's compromise of 10 — and the paper's census of who deploys what.")
}
