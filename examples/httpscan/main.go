// HTTP scan walkthrough: how the prober handles the server behaviours
// an Internet-wide scan meets without prior knowledge (§3.2).
//
// Five hosts demonstrate the decision tree: a plain page (one
// connection suffices), a 301 redirect (the Location is followed on a
// fresh connection), a URI-echoing 404 (the bloated request URI
// enlarges the error page past the IW), an Akamai-style fixed 404
// (bloat cannot help -> few data), and a virtual-hosting frontend that
// withholds content from IP-only clients.
//
//	go run ./examples/httpscan
package main

import (
	"fmt"

	"iwscan/internal/core"
	"iwscan/internal/httpsim"
	"iwscan/internal/netsim"
	"iwscan/internal/tcpstack"
	"iwscan/internal/wire"
)

type demoHost struct {
	name string
	addr wire.Addr
	cfg  httpsim.ServerConfig
}

func main() {
	net := netsim.New(7)
	net.SetPath(netsim.PathParams{Delay: 10 * netsim.Millisecond})

	hosts := []demoHost{
		{
			name: "plain page (8 kB)",
			addr: wire.MustParseAddr("198.51.100.1"),
			cfg:  httpsim.ServerConfig{Root: httpsim.BehaviorPage, PageLen: 8192},
		},
		{
			name: "301 redirect to a virtual host",
			addr: wire.MustParseAddr("198.51.100.2"),
			cfg: httpsim.ServerConfig{
				Root:         httpsim.BehaviorRedirect,
				RedirectHost: "www.shop-example.org",
				RedirectPath: "/catalog/index.html",
				PageLen:      6000,
			},
		},
		{
			name: "404 with URI echo (bloatable)",
			addr: wire.MustParseAddr("198.51.100.3"),
			cfg:  httpsim.ServerConfig{Root: httpsim.BehaviorNotFound, EchoURI: true},
		},
		{
			name: "404 without URI echo (Akamai-style)",
			addr: wire.MustParseAddr("198.51.100.4"),
			cfg:  httpsim.ServerConfig{Root: httpsim.BehaviorNotFound, EchoURI: false, ErrPageLen: 150},
		},
		{
			name: "virtual-host frontend (needs a hostname)",
			addr: wire.MustParseAddr("198.51.100.5"),
			cfg:  httpsim.ServerConfig{Root: httpsim.BehaviorVHost, PageLen: 9000, ErrPageLen: 320},
		},
	}

	// All five run IW 10 on a Linux-like stack.
	for _, h := range hosts {
		host := tcpstack.NewHost(net, h.addr, tcpstack.Config{
			IW:  tcpstack.IWPolicy{Kind: tcpstack.IWSegments, Segments: 10},
			MSS: tcpstack.MSSPolicy{Floor: 64},
		})
		host.Listen(80, httpsim.NewServer(h.cfg))
	}

	scanner := core.NewScanner(net, wire.MustParseAddr("192.0.2.1"), core.Config{Seed: 1})

	fmt.Println("every host runs IW 10; watch which behaviours the methodology can measure:")
	for _, h := range hosts {
		h := h
		scanner.ProbeTarget(h.addr, core.TargetConfig{Strategy: core.StrategyHTTP, MSSList: []int{64}},
			func(tr *core.TargetResult) {
				fmt.Printf("\n%-42s -> %s\n", h.name, core.DebugTargetLine(tr))
				switch tr.Outcome {
				case core.OutcomeSuccess:
					fmt.Println("   measured: the response filled the IW and the verification ACK released more data")
				case core.OutcomeFewData:
					fmt.Printf("   unmeasurable: ran out of data; only a lower bound of IW >= %d is known\n", tr.LowerBound)
				}
			})
	}
	// The IP-only scan fails on the vhost frontend — but a hostname-armed
	// scan (the paper's Alexa run) succeeds:
	scanner.ProbeTarget(hosts[4].addr, core.TargetConfig{
		Strategy: core.StrategyHTTP, MSSList: []int{64}, SNI: "www.popular-site.example",
	}, func(tr *core.TargetResult) {
		fmt.Printf("\n%-42s -> %s\n", "vhost frontend, with Host header", core.DebugTargetLine(tr))
	})

	net.RunUntilIdle()
}
