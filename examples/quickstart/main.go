// Quickstart: infer the TCP initial window of a single simulated web
// server, end to end.
//
// It builds a tiny virtual network, places one HTTP server with a known
// IW configuration on it, and runs the paper's inference (Figure 1):
// handshake with MSS 64, request, withheld ACKs, count bytes until the
// first retransmission, verify with a two-segment window.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"iwscan/internal/core"
	"iwscan/internal/httpsim"
	"iwscan/internal/netsim"
	"iwscan/internal/tcpstack"
	"iwscan/internal/wire"
)

func main() {
	// A deterministic virtual network with a 10 ms one-way delay.
	net := netsim.New(42)
	net.SetPath(netsim.PathParams{Delay: 10 * netsim.Millisecond})

	// One web server, configured like a 2017 Linux box: IW 10, MSS floor
	// of 64 bytes, serving an 8 kB page.
	serverAddr := wire.MustParseAddr("198.51.100.10")
	host := tcpstack.NewHost(net, serverAddr, tcpstack.Config{
		IW:  tcpstack.IWPolicy{Kind: tcpstack.IWSegments, Segments: 10},
		MSS: tcpstack.MSSPolicy{Floor: 64},
	})
	host.Listen(80, httpsim.NewServer(httpsim.ServerConfig{
		Root:    httpsim.BehaviorPage,
		PageLen: 8192,
	}))

	// The scanner: the paper's probe module.
	scanner := core.NewScanner(net, wire.MustParseAddr("192.0.2.1"), core.Config{Seed: 1})

	fmt.Println("probing", serverAddr, "over HTTP (3 probes at MSS 64, 3 at MSS 128)...")
	scanner.ProbeTarget(serverAddr, core.TargetConfig{Strategy: core.StrategyHTTP},
		func(tr *core.TargetResult) {
			fmt.Println()
			fmt.Println("result:", core.DebugTargetLine(tr))
			for _, m := range tr.PerMSS {
				fmt.Printf("  announced MSS %3d: outcome %-9s IW %d segments (%d bytes, max segment %d B)\n",
					m.MSS, m.Outcome, m.Segments, m.Bytes, m.MaxSeg)
			}
			if tr.Outcome == core.OutcomeSuccess && !tr.ByteLimited {
				fmt.Println("  the host configures its IW in segments: same count at both MSS values")
			}
		})

	// Drive the virtual clock until every packet and timer has fired.
	net.RunUntilIdle()

	st := scanner.Stats()
	fmt.Printf("\nscanner sent %d packets, detected %d retransmissions, %d verification releases\n",
		st.PacketsSent, st.Retransmits, st.VerifyReleases)

	// Every component aggregated into the network's metrics registry as
	// it ran; the snapshot is the scan's full telemetry — probe outcome
	// taxa, RTT and phase-duration histograms, packet counters. The same
	// data backs iwscan's -status-interval progress lines and its
	// -metrics-out JSON/Prometheus dumps.
	fmt.Println("\nfinal metrics registry snapshot:")
	if err := net.Metrics().Snapshot().WriteSummary(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "writing snapshot:", err)
	}
}
