package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"iwscan/internal/events"
	"iwscan/internal/jobs"
	"iwscan/internal/netsim"
)

// runEventsSmoke drives the control-plane observability scenario end
// to end against real listeners:
//
//  1. Reference: a journal-disarmed daemon runs a fixed-seed job and
//     its artifact bytes are kept as ground truth.
//  2. Watched run: a journal-armed daemon runs the identical spec
//     while an SSE client watches /events/watch. The client must see
//     the full submitted → dispatched → running → completed lifecycle
//     (plus at least one dispatch audit and one heartbeat) without a
//     single poll of /jobs/{id}, the SSE ids must be gap-free, and
//     the artifact must be byte-identical to the reference — the
//     journal is observational only.
//  3. Restart: the daemon is stopped (the watcher must receive the
//     terminal server_shutdown before its stream ends) and rebooted
//     on the same state. Sequence numbers must continue monotonically,
//     a watcher resuming from its last SSE id must see no gap, and a
//     second job must complete under watch as before.
//  4. The full journal is re-read over paginated /events and checked
//     contiguous from 1 to the high-water mark.
//
// The journal file is left behind for `iwtrace jobs -validate` — the
// make events-smoke gate runs both.
func runEventsSmoke(cfg jobs.Config) error {
	if err := os.RemoveAll(cfg.Dir); err != nil {
		return err
	}
	cfg.MaxConcurrent = 1
	cfg.SliceVirtual = 5 * netsim.Second

	spec := jobs.Spec{
		Tenant: "obs", Seed: 7, SampleFraction: 0.006,
		Rate: 150, MSSList: []int{64}, Repeats: 1,
	}

	// Phase 1 — reference artifact with the journal disarmed.
	refCfg := cfg
	refCfg.Dir = filepath.Join(cfg.Dir, "reference")
	refBytes, err := referenceArtifact(refCfg, spec)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	fmt.Printf("events-smoke: reference artifact %d bytes (journal disarmed)\n", len(refBytes))

	// Phase 2 — the same spec under a journal-armed daemon, observed
	// purely over SSE.
	jr, err := events.Open(filepath.Join(cfg.Dir, "events"))
	if err != nil {
		return err
	}
	armed := cfg
	armed.Events = jr
	m, err := jobs.NewManager(armed)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	js := jobs.NewServer(m)
	js.Heartbeat = 150 * time.Millisecond
	srv := &http.Server{Handler: js.Handler()}
	go srv.Serve(ln)
	c := smokeClient{base: "http://" + ln.Addr().String()}
	fmt.Printf("events-smoke: daemon on %s (journal %s)\n", c.base, filepath.Join(cfg.Dir, "events"))

	// The watch opens BEFORE the submit: everything below about job 1
	// is learned from the stream alone.
	w, err := openWatch(c.base + "/events/watch?from=1")
	if err != nil {
		return err
	}
	job1, err := c.submit(spec)
	if err != nil {
		return err
	}
	if err := awaitLifecycle(w, job1.ID); err != nil {
		return fmt.Errorf("watching job 1: %w", err)
	}
	// With the job done the stream idles; a heartbeat must keep the
	// connection warm within a few intervals.
	if err := w.awaitHeartbeat(5 * time.Second); err != nil {
		return err
	}
	fmt.Printf("events-smoke: job 1 lifecycle observed over SSE (%d events, %d heartbeats, no /jobs polls)\n",
		len(w.evs), w.heartbeats.Load())

	var h jobs.Health
	if err := c.getJSON("/healthz", &h); err != nil {
		return err
	}
	if !h.JournalArmed || h.JournalSeq == 0 || h.Watchers < 1 {
		return fmt.Errorf("healthz inconsistent: armed=%v seq=%d watchers=%d", h.JournalArmed, h.JournalSeq, h.Watchers)
	}

	gotBytes, err := c.artifact(job1.ID)
	if err != nil {
		return err
	}
	if len(gotBytes) == 0 || !bytes.Equal(gotBytes, refBytes) {
		return fmt.Errorf("journal-armed artifact differs from disarmed reference (%d vs %d bytes)",
			len(gotBytes), len(refBytes))
	}
	fmt.Printf("events-smoke: artifact byte-identical with journal armed (%d bytes)\n", len(gotBytes))

	// Phase 3 — graceful stop. The open watcher must end with the
	// terminal server_shutdown event, never a silent drop.
	m.Close()
	if err := w.awaitClose(10*time.Second, events.TypeServerShutdown); err != nil {
		return err
	}
	lastSeq := w.lastSeq
	srv.Close()
	fmt.Printf("events-smoke: shutdown delivered server_shutdown to the watcher (seq %d)\n", lastSeq)

	// Reboot on the same state: sequences continue, a resume-from-
	// cursor watch sees no gap, and a second job completes under watch.
	jr2, err := events.Open(filepath.Join(cfg.Dir, "events"))
	if err != nil {
		return err
	}
	if hw := jr2.HighWater(); hw != lastSeq {
		return fmt.Errorf("journal high water %d after reopen, watcher saw %d", hw, lastSeq)
	}
	armed.Events = jr2
	m2, err := jobs.NewManager(armed)
	if err != nil {
		return err
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	js2 := jobs.NewServer(m2)
	js2.Heartbeat = 150 * time.Millisecond
	srv2 := &http.Server{Handler: js2.Handler()}
	go srv2.Serve(ln2)
	defer srv2.Close()
	c = smokeClient{base: "http://" + ln2.Addr().String()}

	w2, err := openWatch(c.base + "/events/watch?from=" + strconv.FormatUint(lastSeq+1, 10))
	if err != nil {
		return err
	}
	spec.Seed = 8
	job2, err := c.submit(spec)
	if err != nil {
		return err
	}
	if err := awaitLifecycle(w2, job2.ID); err != nil {
		return fmt.Errorf("watching job 2 after restart: %w", err)
	}
	if w2.firstSeq != lastSeq+1 {
		return fmt.Errorf("restart broke sequence continuity: resume cursor %d but first event %d",
			lastSeq+1, w2.firstSeq)
	}
	if w2.types["daemon_start"] == 0 {
		return fmt.Errorf("no daemon_start event after restart")
	}
	fmt.Printf("events-smoke: restart continued sequences at %d; job 2 observed over SSE\n", w2.firstSeq)

	// Phase 4 — paginated walk of the whole journal, contiguous from 1.
	var next, want uint64 = 1, 1
	for {
		var page jobs.EventsPage
		if err := c.getJSON("/events?limit=50&from="+strconv.FormatUint(next, 10), &page); err != nil {
			return err
		}
		for _, ev := range page.Events {
			if ev.Seq != want {
				return fmt.Errorf("paginated walk: got seq %d, want %d", ev.Seq, want)
			}
			want++
		}
		if page.Next > page.HighWater {
			if want != page.HighWater+1 {
				return fmt.Errorf("paginated walk ended at %d, high water %d", want-1, page.HighWater)
			}
			fmt.Printf("events-smoke: paginated /events walk contiguous over %d events\n", want-1)
			break
		}
		next = page.Next
	}

	m2.Close()
	if err := w2.awaitClose(10*time.Second, events.TypeServerShutdown); err != nil {
		return err
	}
	return nil
}

// referenceArtifact completes one job on a journal-disarmed daemon and
// returns its artifact bytes.
func referenceArtifact(cfg jobs.Config, spec jobs.Spec) ([]byte, error) {
	m, err := jobs.NewManager(cfg)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: jobs.NewServer(m).Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	c := smokeClient{base: "http://" + ln.Addr().String()}
	v, err := c.submit(spec)
	if err != nil {
		return nil, err
	}
	fin, err := c.await(v.ID, 120*time.Second, func(v jobs.JobView) bool { return v.State.Terminal() })
	if err != nil {
		return nil, err
	}
	if fin.State != jobs.StateCompleted {
		return nil, fmt.Errorf("reference job finished as %s (%s)", fin.State, fin.Error)
	}
	return c.artifact(v.ID)
}

// sseWatch is a minimal SSE client over one /events/watch stream.
type sseWatch struct {
	resp       *http.Response
	ch         chan events.Event
	done       chan error
	evs        []events.Event
	types      map[string]int
	firstSeq   uint64
	lastSeq    uint64
	heartbeats atomic.Int64
}

func openWatch(url string) (*sseWatch, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("watch %s: HTTP %d", url, resp.StatusCode)
	}
	w := &sseWatch{resp: resp, ch: make(chan events.Event, 256), done: make(chan error, 1), types: map[string]int{}}
	go w.read()
	return w, nil
}

// read parses the stream: "id:"/"event:"/"data:" fields per event,
// ": heartbeat" comment lines counted on the side.
func (w *sseWatch) read() {
	defer close(w.ch)
	sc := bufio.NewScanner(w.resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var id uint64
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ": heartbeat"):
			w.heartbeats.Add(1)
		case strings.HasPrefix(line, "id: "):
			id, _ = strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			var ev events.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				w.done <- fmt.Errorf("watch: bad SSE data at id %d: %w", id, err)
				return
			}
			if ev.Seq != id {
				w.done <- fmt.Errorf("watch: SSE id %d but event seq %d", id, ev.Seq)
				return
			}
			w.ch <- ev
			data = ""
		}
	}
	w.done <- sc.Err()
}

// next returns the following event on the stream, enforcing gap-free
// sequence numbers as they arrive.
func (w *sseWatch) next(timeout time.Duration) (events.Event, error) {
	select {
	case ev, ok := <-w.ch:
		if !ok {
			err := <-w.done
			if err == nil {
				err = fmt.Errorf("watch stream closed")
			}
			return events.Event{}, err
		}
		if w.lastSeq != 0 && ev.Seq != w.lastSeq+1 {
			return events.Event{}, fmt.Errorf("watch: sequence gap %d -> %d", w.lastSeq, ev.Seq)
		}
		if w.firstSeq == 0 {
			w.firstSeq = ev.Seq
		}
		w.lastSeq = ev.Seq
		w.evs = append(w.evs, ev)
		w.types[ev.Type]++
		return ev, nil
	case <-time.After(timeout):
		return events.Event{}, fmt.Errorf("watch: no event within %s", timeout)
	}
}

// awaitHeartbeat waits until at least one SSE heartbeat comment has
// arrived on the stream.
func (w *sseWatch) awaitHeartbeat(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for w.heartbeats.Load() == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("no SSE heartbeat within %s", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}

// awaitClose drains the stream to EOF and requires the final event to
// be of the given type (the shutdown contract: watchers are told, not
// dropped).
func (w *sseWatch) awaitClose(timeout time.Duration, finalType string) error {
	deadline := time.Now().Add(timeout)
	last := ""
	for {
		ev, err := w.next(time.Until(deadline))
		if err != nil {
			if strings.Contains(err.Error(), "stream closed") {
				if last != finalType {
					return fmt.Errorf("watch closed after %q, want terminal %q", last, finalType)
				}
				w.resp.Body.Close()
				return nil
			}
			return err
		}
		last = ev.Type
	}
}

// awaitLifecycle consumes the stream until jobID completes, then
// checks the full lifecycle was visible: submission, at least one
// dispatch audit, the running edge and the terminal completed edge —
// all learned from events, never from polling the job resource.
func awaitLifecycle(w *sseWatch, jobID string) error {
	deadline := time.Now().Add(120 * time.Second)
	var submitted, running, completed, dispatches int
	for completed == 0 {
		ev, err := w.next(time.Until(deadline))
		if err != nil {
			return err
		}
		if ev.Job != jobID {
			continue
		}
		switch ev.Type {
		case events.TypeJobSubmitted:
			submitted++
		case events.TypeDispatch:
			dispatches++
		case events.TypeStateChange:
			to, _ := ev.Fields["to"].(string)
			switch jobs.State(to) {
			case jobs.StateRunning:
				running++
			case jobs.StateCompleted:
				completed++
			case jobs.StateFailed, jobs.StateCancelled:
				return fmt.Errorf("job %s reached %s: %v", jobID, to, ev.Fields["reason"])
			}
		}
	}
	if submitted == 0 || running == 0 || dispatches == 0 {
		return fmt.Errorf("incomplete lifecycle on the stream: submitted=%d running=%d dispatches=%d",
			submitted, running, dispatches)
	}
	return nil
}
