package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"iwscan/internal/jobs"
	"iwscan/internal/netsim"
)

// runSmoke boots the daemon against a real listener and drives the
// acceptance scenario end to end over HTTP:
//
//  1. Fair share: tenants alpha (weight 3) and beta (weight 1) submit
//     identical workloads; once both complete, alpha must hold 75% ±10
//     of the contended probe budget.
//  2. Pause/resume: two fresh tenants submit identical jobs; one is
//     paused mid-flight and resumed, and its artifact must come out
//     byte-identical to the uninterrupted twin's.
//
// The state directory is cleared first so stale jobs from an earlier
// smoke cannot skew the scheduler accounts.
func runSmoke(cfg jobs.Config) error {
	if err := os.RemoveAll(cfg.Dir); err != nil {
		return err
	}
	// Serialize segments so the fair-share interleave is exactly what
	// the virtual clocks dictate, and keep segments short so pause
	// points come often.
	cfg.MaxConcurrent = 1
	cfg.SliceVirtual = 5 * netsim.Second

	m, err := jobs.NewManager(cfg)
	if err != nil {
		return err
	}
	defer m.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: jobs.NewServer(m).Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	c := smokeClient{base: "http://" + ln.Addr().String()}
	fmt.Printf("smoke: daemon on %s (state %s)\n", c.base, cfg.Dir)

	// Phase 1 — fair-share convergence at 3:1.
	big := jobs.Spec{
		Tenant: "alpha", Weight: 3, Seed: 11, SampleFraction: 0.0125,
		Rate: 200, MSSList: []int{64}, Repeats: 1,
	}
	a1, err := c.submit(big)
	if err != nil {
		return err
	}
	big.Tenant, big.Weight = "beta", 1
	b1, err := c.submit(big)
	if err != nil {
		return err
	}
	for _, id := range []string{a1.ID, b1.ID} {
		v, err := c.await(id, 120*time.Second, func(v jobs.JobView) bool { return v.State.Terminal() })
		if err != nil {
			return err
		}
		if v.State != jobs.StateCompleted {
			return fmt.Errorf("job %s finished as %s (%s)", id, v.State, v.Error)
		}
	}
	var stats jobs.SchedulerStats
	if err := c.getJSON("/scheduler", &stats); err != nil {
		return err
	}
	var contA, contB int64
	for _, tv := range stats.Tenants {
		switch tv.Name {
		case "alpha":
			contA = tv.Contended
		case "beta":
			contB = tv.Contended
		}
	}
	if contA+contB < 1000 {
		return fmt.Errorf("contention window too small: %d probes", contA+contB)
	}
	share := float64(contA) / float64(contA+contB)
	fmt.Printf("smoke: fair share alpha %.1f%% of %d contended probes (want 75%% ± 10)\n",
		100*share, contA+contB)
	if share < 0.65 || share > 0.85 {
		return fmt.Errorf("fair share violated: alpha at %.1f%%, want 75%% ± 10", 100*share)
	}

	// Phase 2 — pause/resume byte identity on fresh tenants (equal
	// weights, zero virtual-time debt, so both jobs interleave from the
	// start and the pause lands mid-flight).
	// Sized for ~19 segments so the mid-flight pause below cannot race
	// the job's completion even on a heavily loaded machine.
	twin := jobs.Spec{
		Tenant: "gamma", Seed: 7, SampleFraction: 0.012,
		Rate: 100, MSSList: []int{64}, Repeats: 1,
	}
	ref, err := c.submit(twin)
	if err != nil {
		return err
	}
	twin.Tenant = "delta"
	tgt, err := c.submit(twin)
	if err != nil {
		return err
	}
	// Let the target job make real progress, then pause it.
	if _, err := c.await(tgt.ID, 60*time.Second, func(v jobs.JobView) bool { return v.Slices >= 1 }); err != nil {
		return err
	}
	if _, err := c.post("/jobs/" + tgt.ID + "/pause"); err != nil {
		return err
	}
	pv, err := c.await(tgt.ID, 60*time.Second, func(v jobs.JobView) bool {
		return v.State == jobs.StatePaused || v.State.Terminal()
	})
	if err != nil {
		return err
	}
	if pv.State != jobs.StatePaused {
		return fmt.Errorf("pause did not land mid-flight: job %s reached %s first", tgt.ID, pv.State)
	}
	fmt.Printf("smoke: paused %s after %d segments (%d records durable)\n",
		tgt.ID, pv.Slices, pv.RecordsEmitted)
	if _, err := c.post("/jobs/" + tgt.ID + "/resume"); err != nil {
		return err
	}
	for _, id := range []string{ref.ID, tgt.ID} {
		v, err := c.await(id, 120*time.Second, func(v jobs.JobView) bool { return v.State.Terminal() })
		if err != nil {
			return err
		}
		if v.State != jobs.StateCompleted {
			return fmt.Errorf("job %s finished as %s (%s)", id, v.State, v.Error)
		}
	}
	wantBytes, err := c.artifact(ref.ID)
	if err != nil {
		return err
	}
	gotBytes, err := c.artifact(tgt.ID)
	if err != nil {
		return err
	}
	if len(wantBytes) == 0 || !bytes.Equal(wantBytes, gotBytes) {
		return fmt.Errorf("paused-and-resumed artifact differs from uninterrupted twin (%d vs %d bytes)",
			len(gotBytes), len(wantBytes))
	}
	fmt.Printf("smoke: resumed artifact byte-identical to uninterrupted twin (%d bytes)\n", len(gotBytes))
	return nil
}

// smokeClient is a minimal JSON client for the daemon API.
type smokeClient struct {
	base string
}

func (c smokeClient) submit(spec jobs.Spec) (jobs.JobView, error) {
	body, _ := json.Marshal(spec)
	resp, err := http.Post(c.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return jobs.JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		return jobs.JobView{}, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, msg)
	}
	var v jobs.JobView
	return v, json.NewDecoder(resp.Body).Decode(&v)
}

func (c smokeClient) post(path string) (jobs.JobView, error) {
	resp, err := http.Post(c.base+path, "", nil)
	if err != nil {
		return jobs.JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return jobs.JobView{}, fmt.Errorf("POST %s: HTTP %d: %s", path, resp.StatusCode, msg)
	}
	var v jobs.JobView
	return v, json.NewDecoder(resp.Body).Decode(&v)
}

func (c smokeClient) getJSON(path string, v any) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (c smokeClient) artifact(id string) ([]byte, error) {
	resp, err := http.Get(c.base + "/jobs/" + id + "/artifact")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("artifact %s: HTTP %d", id, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func (c smokeClient) await(id string, timeout time.Duration, pred func(jobs.JobView) bool) (jobs.JobView, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var v jobs.JobView
		if err := c.getJSON("/jobs/"+id, &v); err != nil {
			return v, err
		}
		if pred(v) {
			return v, nil
		}
		time.Sleep(time.Millisecond)
	}
	return jobs.JobView{}, fmt.Errorf("timed out waiting on job %s", id)
}
