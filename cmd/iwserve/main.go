// Command iwserve runs the scan-service control plane: a daemon that
// accepts scan jobs over HTTP, schedules them fairly across tenants,
// and survives restarts without perturbing a single output byte.
//
// Each job is a complete scan spec (target universe, probe strategy,
// adversity profile, output format, tenant identity and rate budget)
// submitted as JSON. The daemon slices every job into short virtual-time
// segments and interleaves segments across tenants with a virtual-time
// fair-share scheduler: tenants receive probe budget in proportion to
// their weights, and a job's engine rate is capped at its tenant's share
// of the global probes-per-second budget (the paper's §3.4 uplink
// arithmetic — 150 kpps by default). Jobs can be paused, resumed and
// cancelled at any time; requests take effect at the next segment
// boundary, where the engine cursor and artifact are persisted in one
// atomic write. A paused-then-resumed job — including across a daemon
// restart — produces byte-identical output to an uninterrupted run.
//
// API (see internal/jobs for the handlers):
//
//	POST /jobs                 submit (JSON spec) → job view
//	GET  /jobs                 list jobs
//	GET  /jobs/{id}            job detail
//	POST /jobs/{id}/pause      pause at the next segment boundary
//	POST /jobs/{id}/resume     re-queue a paused job
//	POST /jobs/{id}/cancel     cancel, keeping the artifact prefix
//	GET  /jobs/{id}/artifact   download the durable artifact prefix
//	GET  /jobs/{id}/debug/     per-job live debug (/metrics, /dash, ...)
//	GET  /scheduler            fair-share accounts and budget state
//	GET  /healthz              liveness
//
// Examples:
//
//	iwserve -state /var/lib/iwscan -addr :8070
//	iwserve -state ./serve -budget 150000 -concurrency 4
//	curl -s -X POST localhost:8070/jobs -d '{"tenant":"acme","seed":7,"sample_fraction":0.01}'
//	curl -s localhost:8070/scheduler | jq .tenants
//
// The -smoke flag runs a self-contained two-tenant scenario against a
// real listener (submit at 3:1 weights, pause and resume one job
// mid-flight, verify fair-share convergence and byte-identical output)
// and exits non-zero on any violation; `make serve-smoke` wires it into
// the repo's checks.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iwscan/internal/jobs"
	"iwscan/internal/netsim"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8070", "HTTP listen address")
		state       = flag.String("state", "iwserve-state", "durable state directory (jobs, artifacts, checkpoints)")
		budget      = flag.Float64("budget", 150000, "global probe budget in probes/sec of virtual time, split across tenants by weight (§3.4)")
		concurrency = flag.Int("concurrency", 2, "segments executing concurrently")
		slice       = flag.Duration("slice", 10*time.Second, "virtual-time length of one scheduling segment (pause/cancel granularity)")
		smoke       = flag.Bool("smoke", false, "run the two-tenant smoke scenario against a real listener and exit")
	)
	flag.Parse()

	cfg := jobs.Config{
		Dir:           *state,
		BudgetPPS:     *budget,
		MaxConcurrent: *concurrency,
		SliceVirtual:  netsim.Time(*slice),
	}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("smoke: OK")
		return
	}

	m, err := jobs.NewManager(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iwserve:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iwserve:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: jobs.NewServer(m).Handler()}
	fmt.Printf("iwserve: listening on http://%s (state %s, budget %.0f pps, %d slots)\n",
		ln.Addr(), *state, *budget, *concurrency)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("iwserve: %s — draining to segment boundaries\n", s)
	case err := <-done:
		fmt.Fprintln(os.Stderr, "iwserve:", err)
	}

	// Graceful stop: close the listener, then let every executing
	// segment reach its pause point so the state directory is left at a
	// clean boundary a restart resumes exactly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv.Shutdown(ctx)
	cancel()
	m.Close()
	fmt.Println("iwserve: state drained, bye")
}
