// Command iwserve runs the scan-service control plane: a daemon that
// accepts scan jobs over HTTP, schedules them fairly across tenants,
// and survives restarts without perturbing a single output byte.
//
// Each job is a complete scan spec (target universe, probe strategy,
// adversity profile, output format, tenant identity and rate budget)
// submitted as JSON. The daemon slices every job into short virtual-time
// segments and interleaves segments across tenants with a virtual-time
// fair-share scheduler: tenants receive probe budget in proportion to
// their weights, and a job's engine rate is capped at its tenant's share
// of the global probes-per-second budget (the paper's §3.4 uplink
// arithmetic — 150 kpps by default). Jobs can be paused, resumed and
// cancelled at any time; requests take effect at the next segment
// boundary, where the engine cursor and artifact are persisted in one
// atomic write. A paused-then-resumed job — including across a daemon
// restart — produces byte-identical output to an uninterrupted run.
//
// Every control-plane decision is journaled: the daemon appends one
// structured event per state transition, scheduler dispatch (with the
// losing candidates and their virtual times), vtime charge/settlement,
// segment and shard execution, checkpoint write and restart-recovery
// action to an append-only events.jsonl under the state directory.
// The journal is observational only — artifacts stay byte-identical
// with it armed — and sequence numbers continue monotonically across
// restarts. Watch endpoints stream it live over SSE; `iwtrace jobs`
// validates it offline and exports the span tree as a Chrome trace.
//
// API (see internal/jobs for the handlers):
//
//	POST /jobs                 submit (JSON spec) → job view
//	GET  /jobs                 list jobs
//	GET  /jobs/{id}            job detail
//	POST /jobs/{id}/pause      pause at the next segment boundary
//	POST /jobs/{id}/resume     re-queue a paused job
//	POST /jobs/{id}/cancel     cancel, keeping the artifact prefix
//	GET  /jobs/{id}/artifact   download the durable artifact prefix
//	GET  /jobs/{id}/debug/     per-job live debug (/metrics, /dash, ...)
//	GET  /jobs/{id}/events     one job's journal page (?from=&limit=&wait=)
//	GET  /jobs/{id}/watch      live SSE stream for one job
//	GET  /events               full journal page (?from=&limit=&wait=)
//	GET  /events/watch         live SSE stream, all events
//	GET  /scheduler            fair-share accounts and budget state
//	GET  /scheduler/audit      scheduler decisions (dispatch/vtime events)
//	GET  /metrics              control-plane metrics, Prometheus format
//	GET  /metrics.json         same snapshot as JSON
//	GET  /dash/jobs            live control-plane dashboard
//	GET  /healthz              liveness + journal high-water mark
//
// Examples:
//
//	iwserve -state /var/lib/iwscan -addr :8070
//	iwserve -state ./serve -budget 150000 -concurrency 4
//	curl -s -X POST localhost:8070/jobs -d '{"tenant":"acme","seed":7,"sample_fraction":0.01}'
//	curl -s localhost:8070/scheduler | jq .tenants
//	curl -sN localhost:8070/events/watch?from=1   # SSE replay + live tail
//	iwtrace jobs -validate serve/events/events.jsonl
//
// The -smoke flag runs a self-contained two-tenant scenario against a
// real listener (submit at 3:1 weights, pause and resume one job
// mid-flight, verify fair-share convergence and byte-identical output)
// and exits non-zero on any violation; `make serve-smoke` wires it into
// the repo's checks. The -events-smoke flag runs the observability
// scenario instead (lifecycle watched purely over SSE, a mid-scenario
// restart with sequence continuation, artifact byte-identity with the
// journal armed); `make events-smoke` wires it in and validates the
// journal it leaves behind with `iwtrace jobs -validate`.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"iwscan/internal/events"
	"iwscan/internal/jobs"
	"iwscan/internal/netsim"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8070", "HTTP listen address")
		state       = flag.String("state", "iwserve-state", "durable state directory (jobs, artifacts, checkpoints)")
		budget      = flag.Float64("budget", 150000, "global probe budget in probes/sec of virtual time, split across tenants by weight (§3.4)")
		concurrency = flag.Int("concurrency", 2, "segments executing concurrently")
		slice       = flag.Duration("slice", 10*time.Second, "virtual-time length of one scheduling segment (pause/cancel granularity)")
		eventsDir   = flag.String("events", "", "event-journal directory (default <state>/events; empty string for the default, \"off\" to disarm)")
		heartbeat   = flag.Duration("heartbeat", 5*time.Second, "SSE heartbeat interval for /events/watch streams")
		smoke       = flag.Bool("smoke", false, "run the two-tenant smoke scenario against a real listener and exit")
		eventsSmoke = flag.Bool("events-smoke", false, "run the observability smoke scenario (SSE lifecycle watch, restart continuity, journal validity) and exit")
	)
	flag.Parse()

	cfg := jobs.Config{
		Dir:           *state,
		BudgetPPS:     *budget,
		MaxConcurrent: *concurrency,
		SliceVirtual:  netsim.Time(*slice),
	}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("smoke: OK")
		return
	}
	if *eventsSmoke {
		if err := runEventsSmoke(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "events-smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("events-smoke: OK")
		return
	}

	// Arm the journal before anything else touches the state directory:
	// an unwritable or foreign-file-bearing events dir is a named,
	// actionable refusal at startup, not a mid-scan surprise (the same
	// guard iwscan applies to -flight-dir).
	journalDir := *eventsDir
	if journalDir == "" {
		journalDir = filepath.Join(*state, "events")
	}
	if journalDir != "off" {
		j, err := events.Open(journalDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iwserve: events dir:", err)
			os.Exit(1)
		}
		cfg.Events = j
	}

	m, err := jobs.NewManager(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iwserve:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iwserve:", err)
		os.Exit(1)
	}
	js := jobs.NewServer(m)
	js.Heartbeat = *heartbeat
	srv := &http.Server{Handler: js.Handler()}
	fmt.Printf("iwserve: listening on http://%s (state %s, budget %.0f pps, %d slots, journal %s)\n",
		ln.Addr(), *state, *budget, *concurrency, journalDir)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("iwserve: %s — draining to segment boundaries\n", s)
	case err := <-done:
		fmt.Fprintln(os.Stderr, "iwserve:", err)
	}

	// Graceful stop: drain the manager first — every executing segment
	// reaches its pause point, the journal records server_shutdown and
	// closes, and closing it releases every SSE watcher (their streams
	// end with the terminal event). Only then can srv.Shutdown drain
	// the HTTP side, because watch handlers block until the journal
	// closes: the reverse order would deadlock the drain on its own
	// watchers until the timeout.
	m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv.Shutdown(ctx)
	cancel()
	fmt.Println("iwserve: state drained, bye")
}
