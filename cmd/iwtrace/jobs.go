package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"

	"iwscan/internal/events"
	"iwscan/internal/flight"
	"iwscan/internal/jobs"
)

// runJobs inspects an iwserve control-plane event journal: summary
// accounting, semantic validation (jobs.ValidateJournal) and Chrome
// trace-event export of the span tree.
func runJobs(args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ExitOnError)
	validate := fs.Bool("validate", false, "enforce journal invariants and trace-export validity; exit nonzero on violation")
	minDispatch := fs.Int("min-dispatch", 1, "with -validate: minimum dispatch-audit events per job that ran")
	jobID := fs.String("job", "", "restrict to one job's events (plus daemon lifecycle markers)")
	format := fs.String("fmt", "summary", "output format: summary or trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("jobs: want exactly one journal file, got %d args", fs.NArg())
	}
	if *format != "summary" && *format != "trace" {
		return fmt.Errorf("jobs: unknown -fmt %q (want summary or trace)", *format)
	}
	path := fs.Arg(0)

	evs, torn, err := events.ReadFile(path)
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if torn > 0 {
		fmt.Fprintf(os.Stderr, "iwtrace jobs: %s: %d torn trailing bytes ignored\n", path, torn)
	}

	// Validation always runs over the full journal — a -job filter
	// narrows the output, not the invariants (a filtered slice would
	// have sequence gaps by construction).
	var sum jobs.JournalSummary
	if *validate {
		sum, err = jobs.ValidateJournal(evs, *minDispatch)
		if err != nil {
			return fmt.Errorf("jobs: journal invalid: %w", err)
		}
		var buf bytes.Buffer
		if err := events.WriteTraceEvents(&buf, evs); err != nil {
			return fmt.Errorf("jobs: trace export: %w", err)
		}
		if _, err := flight.ValidateTraceEvents(buf.Bytes()); err != nil {
			return fmt.Errorf("jobs: trace export invalid: %w", err)
		}
	}

	if *jobID != "" {
		filtered := evs[:0:0]
		matched := 0
		for _, ev := range evs {
			switch {
			case ev.Job == *jobID:
				matched++
			case ev.Type != events.TypeDaemonStart && ev.Type != events.TypeServerShutdown:
				continue
			}
			filtered = append(filtered, ev)
		}
		if matched == 0 {
			return fmt.Errorf("jobs: no events for job %q", *jobID)
		}
		evs = filtered
	}

	if *format == "trace" {
		return events.WriteTraceEvents(os.Stdout, evs)
	}

	if !*validate {
		// Summary without validation: tally without enforcing.
		sum = tallyJournal(evs)
	} else if *jobID != "" {
		sum = tallyJournal(evs)
	}
	printJournalSummary(path, evs, torn, sum, *validate)
	return nil
}

// tallyJournal computes the summary counts without enforcing any
// invariant — used when -validate is off (or after a -job filter,
// whose sequence gaps the validator would reject).
func tallyJournal(evs []events.Event) jobs.JournalSummary {
	sum := jobs.JournalSummary{TypeCounts: map[string]int{}, TenantCounts: map[string]int{}}
	seen := map[string]bool{}
	for _, ev := range evs {
		sum.Events++
		sum.TypeCounts[ev.Type]++
		if ev.Tenant != "" {
			sum.TenantCounts[ev.Tenant]++
		}
		if ev.Job != "" && !seen[ev.Job] {
			seen[ev.Job] = true
		}
		switch ev.Type {
		case events.TypeDaemonStart:
			sum.Restarts++
		case events.TypeServerShutdown:
			sum.Shutdowns++
		case events.TypeDispatch:
			sum.Dispatches++
		case events.TypeSegmentStart:
			sum.Segments++
		case events.TypeCheckpointWrite:
			sum.Checkpoints++
		}
	}
	sum.Jobs = len(seen)
	return sum
}

func printJournalSummary(path string, evs []events.Event, torn int, sum jobs.JournalSummary, validated bool) {
	fmt.Printf("journal %s\n", path)
	if len(evs) > 0 {
		fmt.Printf("  sequences  %d..%d\n", evs[0].Seq, evs[len(evs)-1].Seq)
	}
	fmt.Printf("  events     %d\n", sum.Events)
	fmt.Printf("  jobs       %d\n", sum.Jobs)
	fmt.Printf("  dispatches %d\n", sum.Dispatches)
	fmt.Printf("  segments   %d\n", sum.Segments)
	fmt.Printf("  restarts   %d  shutdowns %d  checkpoints %d\n", sum.Restarts, sum.Shutdowns, sum.Checkpoints)
	if torn > 0 {
		fmt.Printf("  torn tail  %d bytes\n", torn)
	}
	fmt.Printf("  by type:\n")
	for _, k := range sortedKeys(sum.TypeCounts) {
		fmt.Printf("    %-18s %d\n", k, sum.TypeCounts[k])
	}
	if len(sum.TenantCounts) > 0 {
		fmt.Printf("  by tenant:\n")
		for _, k := range sortedKeys(sum.TenantCounts) {
			fmt.Printf("    %-18s %d\n", k, sum.TenantCounts[k])
		}
	}
	if validated {
		fmt.Printf("  validation ok\n")
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
