// Command iwtrace inspects flight-recorder records written by iwscan's
// -flight-dir (see internal/flight). It lists record directories,
// pretty-prints single records in any of their formats, validates the
// Chrome trace-event exports, and diffs two records of the same host —
// the workflow for answering "why did this probe go wrong, and what
// changed between these two runs?".
//
// Usage:
//
//	iwtrace list <dir>
//	    One summary line per record in the directory.
//
//	iwtrace show [-fmt txt|json|trace] <record.flight.json>
//	    Pretty-print one record: annotated narrative (default), the
//	    canonical JSON, or the Chrome trace-event JSON for Perfetto.
//
//	iwtrace validate <dir | record.flight.json ...>
//	    Check every record's trace-event export parses as valid Chrome
//	    trace-event JSON. Exits nonzero on the first invalid record.
//
//	iwtrace diff <a.flight.json> <b.flight.json>
//	    Align two records of the same host and print the events unique
//	    to each side — e.g. a clean run against a tail-loss casualty.
//
//	iwtrace smoke <dir>
//	    CI guard: require at least one record in the directory and
//	    validate every export. Exits nonzero otherwise.
//
//	iwtrace telemetry [-shards n] [-require-anomaly] <stream.jsonl>
//	    Parse a -telemetry-out JSONL stream, verify its invariants
//	    (every line tagged, per-shard sample indices contiguous,
//	    -shards n shards each contributed at least one sample, and
//	    with -require-anomaly at least one anomaly fired), then print
//	    a per-shard summary. The make telemetry-smoke gate.
//
//	iwtrace smartcmp [-min-saved f] [-min-found f] <full> <smart>
//	    Compare a smart (or hitlist) rescan's output against the full
//	    scan it was trained on: probes saved (records the rescan did
//	    not emit) and hosts found (fraction of the full scan's
//	    responsive hosts the rescan still reached). Exits nonzero when
//	    either fraction is below its -min gate. Both files may be in
//	    any output format (csv, jsonl, iwb). The make smart-smoke gate.
//
//	iwtrace jobs [-validate] [-min-dispatch n] [-job id] [-fmt summary|trace] <events.jsonl>
//	    Inspect an iwserve control-plane event journal. The default
//	    summary prints event/job/dispatch counts per type and tenant;
//	    -fmt trace exports the span tree (job lifecycle -> segments ->
//	    shards) as Chrome trace-event JSON for Perfetto, optionally
//	    filtered to one job with -job. -validate additionally enforces
//	    the journal invariants (contiguous sequences, legal lifecycle
//	    edges, balanced spans, dispatch audits present — see
//	    jobs.ValidateJournal) and that the trace export parses; the
//	    make events-smoke gate runs it with -min-dispatch 1.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"iwscan/internal/flight"
	"iwscan/internal/output"
	"iwscan/internal/prefixtree"
	"iwscan/internal/timeseries"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "list":
		err = runList(args[1:])
	case "show":
		err = runShow(args[1:])
	case "validate":
		err = runValidate(args[1:])
	case "diff":
		err = runDiff(args[1:])
	case "smoke":
		err = runSmoke(args[1:])
	case "telemetry":
		err = runTelemetry(args[1:])
	case "smartcmp":
		err = runSmartCmp(args[1:])
	case "jobs":
		err = runJobs(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "iwtrace: unknown mode %q\n\n", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "iwtrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  iwtrace list <dir>
  iwtrace show [-fmt txt|json|trace] <record.flight.json>
  iwtrace validate <dir | record.flight.json ...>
  iwtrace diff <a.flight.json> <b.flight.json>
  iwtrace smoke <dir>
  iwtrace telemetry [-shards n] [-require-anomaly] <stream.jsonl>
  iwtrace smartcmp [-min-saved f] [-min-found f] <full> <smart>
  iwtrace jobs [-validate] [-min-dispatch n] [-job id] [-fmt summary|trace] <events.jsonl>
`)
}

// records globs the flight records under dir, sorted by filename (the
// recorder's zero-padded sequence prefix makes that chronological).
func records(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.flight.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func runList(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("list wants exactly one directory")
	}
	paths, err := records(args[0])
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no flight records under %s", args[0])
	}
	fmt.Printf("%-40s %-18s %-8s %10s %7s %8s\n",
		"RECORD", "VERDICT", "TRIGGER", "DURATION", "EVENTS", "PACKETS")
	for _, p := range paths {
		rec, err := flight.Load(p)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(p), ".flight.json")
		trunc := ""
		if rec.EventsTruncated > 0 || rec.PacketsTruncated > 0 {
			trunc = "  (truncated)"
		}
		fmt.Printf("%-40s %-18s %-8s %10s %7d %8d%s\n",
			name, rec.Verdict, rec.Trigger, rec.Duration(),
			len(rec.Events), len(rec.Packets), trunc)
	}
	return nil
}

func runShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	format := fs.String("fmt", "txt", "output format: txt, json or trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("show wants exactly one record file")
	}
	rec, err := flight.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	switch *format {
	case "txt":
		return rec.WriteNarrative(os.Stdout)
	case "trace":
		return rec.WriteTraceEvents(os.Stdout)
	case "json":
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	default:
		return fmt.Errorf("unknown -fmt %q (want txt, json or trace)", *format)
	}
}

// validateRecord regenerates the record's trace-event export and runs
// it through the format checker, returning the event count.
func validateRecord(path string) (int, error) {
	rec, err := flight.Load(path)
	if err != nil {
		return 0, err
	}
	var buf bytes.Buffer
	if err := rec.WriteTraceEvents(&buf); err != nil {
		return 0, err
	}
	n, err := flight.ValidateTraceEvents(buf.Bytes())
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	// The sidecar written at freeze time must agree with a fresh export.
	sidecar := strings.TrimSuffix(path, ".flight.json") + ".trace.json"
	if data, rerr := os.ReadFile(sidecar); rerr == nil {
		if _, err := flight.ValidateTraceEvents(data); err != nil {
			return 0, fmt.Errorf("%s: %w", sidecar, err)
		}
	}
	return n, nil
}

func expandArgs(args []string) ([]string, error) {
	var paths []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if info.IsDir() {
			sub, err := records(a)
			if err != nil {
				return nil, err
			}
			paths = append(paths, sub...)
		} else {
			paths = append(paths, a)
		}
	}
	return paths, nil
}

func runValidate(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("validate wants a directory or record files")
	}
	paths, err := expandArgs(args)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no flight records found")
	}
	total := 0
	for _, p := range paths {
		n, err := validateRecord(p)
		if err != nil {
			return err
		}
		total += n
	}
	fmt.Printf("%d records valid (%d trace events)\n", len(paths), total)
	return nil
}

func runSmoke(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("smoke wants exactly one directory")
	}
	paths, err := records(args[0])
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("smoke: no flight records under %s — the armed scan froze nothing", args[0])
	}
	total := 0
	for _, p := range paths {
		n, err := validateRecord(p)
		if err != nil {
			return err
		}
		total += n
	}
	fmt.Printf("flight smoke ok: %d records, %d trace events, all exports valid\n",
		len(paths), total)
	return nil
}

// eventKey is an event's identity for diffing: everything except
// timestamps, ports and sequence numbers, so the same exchange at a
// different virtual time (or from a different ephemeral port) aligns.
func eventKey(ev *flight.RecordEvent) string {
	return fmt.Sprintf("%s|%s|%s|%s>%s|%s|%s|len=%d",
		ev.Type, ev.Op, ev.Note, ev.Src, ev.Dst,
		ev.Proto, ev.Flags, ev.Len)
}

func runDiff(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("diff wants exactly two record files")
	}
	a, err := flight.Load(args[0])
	if err != nil {
		return err
	}
	b, err := flight.Load(args[1])
	if err != nil {
		return err
	}
	if a.Target != b.Target {
		fmt.Printf("note: records are for different hosts (%s vs %s)\n", a.Target, b.Target)
	}
	fmt.Printf("--- %s: verdict %s (trigger %s), %d events, %d packets, %s\n",
		args[0], a.Verdict, a.Trigger, len(a.Events), len(a.Packets), a.Duration())
	fmt.Printf("+++ %s: verdict %s (trigger %s), %d events, %d packets, %s\n",
		args[1], b.Verdict, b.Trigger, len(b.Events), len(b.Packets), b.Duration())

	// Sequence numbers and ephemeral ports differ across runs even for
	// identical exchanges, so the alignment key deliberately drops them
	// along with timestamps; the printed lines keep everything.
	ak := make([]string, len(a.Events))
	bk := make([]string, len(b.Events))
	for i := range a.Events {
		ak[i] = eventKey(&a.Events[i])
	}
	for i := range b.Events {
		bk[i] = eventKey(&b.Events[i])
	}
	keep := lcs(ak, bk)
	same := 0
	i, j := 0, 0
	for _, m := range keep {
		for i < m.a {
			fmt.Printf("- %s\n", strings.TrimRight(a.Events[i].Line(), "\n"))
			i++
		}
		for j < m.b {
			fmt.Printf("+ %s\n", strings.TrimRight(b.Events[j].Line(), "\n"))
			j++
		}
		same++
		i++
		j++
	}
	for i < len(a.Events) {
		fmt.Printf("- %s\n", strings.TrimRight(a.Events[i].Line(), "\n"))
		i++
	}
	for j < len(b.Events) {
		fmt.Printf("+ %s\n", strings.TrimRight(b.Events[j].Line(), "\n"))
		j++
	}
	fmt.Printf("%d events common, %d only in first, %d only in second\n",
		same, len(a.Events)-same, len(b.Events)-same)
	return nil
}

type match struct{ a, b int }

// lcs returns the index pairs of a longest common subsequence of the
// two key slices. Records cap out at the recorder's event ring (1024
// by default), so the quadratic table stays small.
func lcs(a, b []string) []match {
	n, m := len(a), len(b)
	table := make([]int, (n+1)*(m+1))
	idx := func(i, j int) int { return i*(m+1) + j }
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				table[idx(i, j)] = table[idx(i+1, j+1)] + 1
			} else {
				table[idx(i, j)] = max(table[idx(i+1, j)], table[idx(i, j+1)])
			}
		}
	}
	var out []match
	for i, j := 0, 0; i < n && j < m; {
		switch {
		case a[i] == b[j]:
			out = append(out, match{i, j})
			i++
			j++
		case table[idx(i+1, j)] >= table[idx(i, j+1)]:
			i++
		default:
			j++
		}
	}
	return out
}

// runSmartCmp quantifies a smart rescan against its training scan.
func runSmartCmp(args []string) error {
	fs := flag.NewFlagSet("smartcmp", flag.ExitOnError)
	minSaved := fs.Float64("min-saved", 0, "fail when probes saved is below this fraction")
	minFound := fs.Float64("min-found", 0, "fail when hosts found is below this fraction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("smartcmp wants exactly two scan-output files: full then smart")
	}
	full, err := output.ReadRecordsFile(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("reading full scan %s: %w", fs.Arg(0), err)
	}
	smart, err := output.ReadRecordsFile(fs.Arg(1))
	if err != nil {
		return fmt.Errorf("reading smart scan %s: %w", fs.Arg(1), err)
	}
	if len(full) == 0 {
		return fmt.Errorf("full scan %s has no records", fs.Arg(0))
	}
	fullHosts := len(prefixtree.Hitlist(full))
	if fullHosts == 0 {
		return fmt.Errorf("full scan %s found no responsive hosts", fs.Arg(0))
	}
	saved := 1 - float64(len(smart))/float64(len(full))
	found := float64(len(prefixtree.Hitlist(smart))) / float64(fullHosts)
	fmt.Printf("full:  %d probes, %d responsive hosts\n", len(full), fullHosts)
	fmt.Printf("smart: %d probes, %d responsive hosts\n", len(smart), len(prefixtree.Hitlist(smart)))
	fmt.Printf("probes saved: %.1f%%   hosts found: %.1f%%\n", 100*saved, 100*found)
	if saved < *minSaved {
		return fmt.Errorf("smartcmp: probes saved %.1f%% below gate %.0f%%", 100*saved, 100**minSaved)
	}
	if found < *minFound {
		return fmt.Errorf("smartcmp: hosts found %.1f%% below gate %.0f%%", 100*found, 100**minFound)
	}
	return nil
}

// runTelemetry parses and verifies a -telemetry-out JSONL stream.
func runTelemetry(args []string) error {
	fs := flag.NewFlagSet("telemetry", flag.ExitOnError)
	shards := fs.Int("shards", 0, "require at least one sample from each of n shards (0 = any)")
	requireAnomaly := fs.Bool("require-anomaly", false, "fail unless at least one anomaly fired")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("telemetry wants exactly one stream file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	samples, anomalies, err := timeseries.ReadJSONL(f)
	if err != nil {
		return err
	}
	if err := timeseries.VerifyStream(samples, anomalies, *shards, *requireAnomaly); err != nil {
		return err
	}
	timeseries.SummarizeStream(os.Stdout, samples, anomalies)
	return nil
}
