// Command iwdump renders a packet capture written by iwscan -pcap as
// tcpdump-style text, with HTTP request lines and TLS record types
// annotated — handy for following an IW inference packet by packet.
//
//	iwscan -sample 0.0005 -pcap scan.pcap -out /dev/null
//	iwdump scan.pcap | head -40
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"iwscan/internal/trace"
	"iwscan/internal/wire"
)

func main() {
	host := flag.String("host", "", "only show packets to or from this address")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iwdump [-host a.b.c.d] <capture.pcap>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "iwdump: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	pkts, err := trace.ReadPcap(bufio.NewReader(f))
	if err != nil {
		fmt.Fprintf(os.Stderr, "iwdump: %v\n", err)
		os.Exit(1)
	}
	var filter wire.Addr
	if *host != "" {
		filter, err = wire.ParseAddr(*host)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iwdump: %v\n", err)
			os.Exit(1)
		}
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, p := range pkts {
		if *host != "" {
			ip, _, err := wire.DecodeIPv4(p.Data)
			if err != nil || (ip.Src != filter && ip.Dst != filter) {
				continue
			}
		}
		fmt.Fprintln(w, trace.FormatPacket(p))
	}
}
