// Command experiments regenerates every table and figure of the paper
// against the simulated Internet and prints paper-vs-measured
// comparisons (the source of EXPERIMENTS.md).
//
// Examples:
//
//	experiments                      # run everything at 20% scan scale
//	experiments -run table1,figure3  # selected experiments
//	experiments -sample 1.0          # full-population scans
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"iwscan/internal/experiments"
)

var order = []string{
	"motivation", "table1", "figure2", "figure3", "table2", "figure4",
	"figure5", "table3", "bytelimit", "akamai", "trend", "efficiency", "validation", "pathmtu",
}

func main() {
	var (
		run    = flag.String("run", "all", "comma-separated experiments to run, or 'all'")
		sample = flag.Float64("sample", 0.20, "scan scale: fraction of the address space for the full scans")
		seed   = flag.Uint64("seed", 2017, "universe and scan seed")
		list   = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list {
		for _, name := range order {
			fmt.Println(name)
		}
		return
	}

	selected := map[string]bool{}
	if *run == "all" {
		for _, name := range order {
			selected[name] = true
		}
	} else {
		for _, name := range strings.Split(*run, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}

	suite := experiments.NewSuite(*seed, *sample)
	ran := 0
	for _, name := range order {
		if !selected[name] {
			continue
		}
		ran++
		start := time.Now()
		var text string
		switch name {
		case "motivation":
			text = experiments.Motivation(*seed).Render()
		case "table1":
			text = suite.Table1().Render()
		case "figure2":
			text = experiments.Figure2(*seed, 365000).Render()
		case "figure3":
			text = suite.Figure3().Render()
		case "table2":
			text = suite.Table2().Render()
		case "figure4":
			text = suite.Figure4(10000).Render()
		case "figure5":
			text = suite.Figure5().Render()
		case "table3":
			text = suite.Table3().Render()
		case "bytelimit":
			text = suite.ByteLimit().Render()
		case "akamai":
			text = experiments.AkamaiServices(suite.Universe, *seed, 300).Render()
		case "trend":
			text = experiments.Trend(*seed, *sample/2).Render()
		case "efficiency":
			text = experiments.Efficiency(suite.Universe, *seed, *sample/2).Render()
		case "validation":
			text = experiments.Validation(*seed).Render()
		case "pathmtu":
			text = experiments.PathMTU(suite.Universe, *seed, 3000).Render()
		}
		fmt.Println("==============================================================")
		fmt.Print(text)
		fmt.Printf("  [%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing selected (use -list)\n")
		os.Exit(2)
	}
}
