// Command iwvalidate is the ground-truth validation harness CLI: it
// scans a sample of the simulated Internet, joins every record against
// the universe's per-host IW oracle, and reports how well the estimator
// did — the continuous-validation loop that keeps large-scale scan
// results trustworthy.
//
// Modes:
//
//	report  one scan, one accuracy report: verdict taxonomy, confusion
//	        matrix, per-class precision/recall. -min-accuracy turns the
//	        report into a gate (non-zero exit below the floor).
//	sweep   the same sample across a grid of adversity conditions
//	        (loss, reordering, duplication, jitter, tail loss),
//	        producing accuracy-vs-adversity curves.
//	golden  compare a scan against a checked-in golden snapshot of the
//	        aggregate IW distribution (or refresh one with -write).
//
// Examples:
//
//	iwvalidate -mode report -sample 0.05 -min-accuracy 0.99
//	iwvalidate -mode sweep -sample 0.01 -csv curves.csv
//	iwvalidate -mode golden -golden internal/validate/testdata/golden-http-2017.json
//	iwvalidate -mode golden -golden g.json -write -strategy tls -sample 0.06
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iwscan/internal/core"
	"iwscan/internal/experiments"
	"iwscan/internal/inet"
	"iwscan/internal/validate"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "iwvalidate: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		mode     = flag.String("mode", "report", "report, sweep or golden")
		strategy = flag.String("strategy", "http", "probe strategy: http or tls")
		sample   = flag.Float64("sample", 0.02, "fraction of the address space to probe (0..1]")
		seed     = flag.Uint64("seed", 2017, "scan seed")
		useed    = flag.Uint64("universe-seed", 2017, "universe seed (host population)")
		retries  = flag.Int("retries", 0, "re-launch unreachable probes up to N extra times")
		outPath  = flag.String("out", "", "write the text report here (default stdout)")
		csvPath  = flag.String("csv", "", "sweep mode: also write the curve as CSV here")
		goldenP  = flag.String("golden", "", "golden mode: golden file to compare against or refresh")
		write    = flag.Bool("write", false, "golden mode: capture a fresh golden instead of comparing")
		name     = flag.String("name", "", "golden mode with -write: snapshot name (default derived)")
		minAcc   = flag.Float64("min-accuracy", 0, "report mode: exit non-zero when exact-match accuracy falls below this")
	)
	flag.Parse()

	var strat core.Strategy
	switch *strategy {
	case "http":
		strat = core.StrategyHTTP
	case "tls":
		strat = core.StrategyTLS
	default:
		fatalf("unknown strategy %q (want http or tls)", *strategy)
	}
	if *sample <= 0 || *sample > 1 {
		fatalf("-sample %v out of range: want 0 < sample <= 1", *sample)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("closing %s: %v", *outPath, err)
			}
		}()
		out = f
	}

	switch *mode {
	case "report":
		u := inet.NewInternet2017(*useed)
		res, err := experiments.RunScanChecked(u, experiments.ScanConfig{
			Seed: *seed, Strategy: strat, SampleFraction: *sample, MaxRetries: *retries,
		})
		if err != nil {
			fatalf("%v", err)
		}
		rep := validate.BuildReport(validate.NewOracle(u, 64), *strategy, res.Records)
		fmt.Fprint(out, rep.Render())
		if *minAcc > 0 && rep.Accuracy() < *minAcc {
			fatalf("exact-match accuracy %.4f below floor %.4f", rep.Accuracy(), *minAcc)
		}
		if n := rep.BoundViolations(); n != 0 {
			fatalf("%d bound violations / ghosts — the dataset is not trustworthy", n)
		}

	case "sweep":
		u := inet.NewInternet2017(*useed)
		points, err := validate.RunSweep(u, validate.SweepConfig{
			Strategy: strat, Sample: *sample, Seed: *seed, MaxRetries: *retries,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprint(out, validate.RenderSweep(points))
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				fatalf("%v", err)
			}
			err = validate.WriteSweepCSV(f, points)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatalf("writing %s: %v", *csvPath, err)
			}
		}

	case "golden":
		if *goldenP == "" {
			fatalf("golden mode needs -golden <file>")
		}
		if *write {
			u := inet.NewInternet2017(*useed)
			res, err := experiments.RunScanChecked(u, experiments.ScanConfig{
				Seed: *seed, Strategy: strat, SampleFraction: *sample,
			})
			if err != nil {
				fatalf("%v", err)
			}
			gname := *name
			if gname == "" {
				gname = fmt.Sprintf("%s-%d-sample%g", *strategy, *useed, *sample)
			}
			g := validate.CaptureGolden(gname, *useed, *seed, *strategy, *sample, res.Records)
			if err := validate.SaveGolden(*goldenP, g); err != nil {
				fatalf("%v", err)
			}
			fmt.Fprintf(out, "wrote golden %q (%d records, %d IW bands) to %s\n",
				g.Name, len(res.Records), len(g.IWDist), *goldenP)
			return
		}
		g, err := validate.LoadGolden(*goldenP)
		if err != nil {
			fatalf("%v", err)
		}
		cfg, err := g.ScanConfig()
		if err != nil {
			fatalf("%v", err)
		}
		u := inet.NewInternet2017(g.UniverseSeed)
		res, err := experiments.RunScanChecked(u, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		rep := validate.BuildReport(validate.NewOracle(u, 64), g.Strategy, res.Records)
		violations := g.Compare(res.Records, rep)
		if len(violations) != 0 {
			fmt.Fprintf(out, "golden %q: %d violations\n", g.Name, len(violations))
			for _, v := range violations {
				fmt.Fprintf(out, "  %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(out, "golden %q: population within tolerance (%d records, accuracy %.3f%%)\n",
			g.Name, len(res.Records), 100*rep.Accuracy())

	default:
		fatalf("unknown mode %q (want report, sweep or golden)", *mode)
	}
}
