// Command iwbench is the canonical benchmark harness for the hot paths:
// it runs a fixed set of seeded workloads through testing.Benchmark and
// emits one machine-readable BENCH_scan.json with ns/op, B/op,
// allocs/op and (for the scan workloads) probes per second of wall
// time.
//
// The workloads are deliberately deterministic — fixed universe seeds,
// fixed sample fractions — so two runs on the same machine measure the
// same simulated work and differ only in hardware noise. That is what
// makes the checked-in baseline comparable:
//
//	iwbench -out artifacts/BENCH_scan.json                 # measure
//	iwbench -out ... -check BENCH_scan.json                # gate: fail on >25% regression
//	iwbench -out BENCH_scan.json                           # refresh the baseline
//	iwbench -replay artifacts/BENCH_scan.json -check ...   # re-gate a prior run, no measuring
//
// `make bench`, `make bench-check`, `make bench-refresh` and
// `make bench-compare` wrap these.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"time"

	"iwscan/internal/core"
	"iwscan/internal/experiments"
	"iwscan/internal/inet"
	"iwscan/internal/jobs"
	"iwscan/internal/netsim"
	"iwscan/internal/prefixtree"
	"iwscan/internal/wire"
)

// Workload is one benchmark's results.
type Workload struct {
	Name         string  `json:"name"`
	N            int     `json:"n"`                        // iterations measured
	NsPerOp      float64 `json:"ns_per_op"`                // wall time per op
	BytesPerOp   int64   `json:"bytes_per_op"`             // heap bytes allocated per op
	AllocsPerOp  int64   `json:"allocs_per_op"`            // heap allocations per op
	ProbesPerSec float64 `json:"probes_per_sec,omitempty"` // scan workloads only
	// ShardProbesPerSec breaks the parallel scan workload's throughput
	// down by shard (launched probes per second of wall time, measured
	// over the same elapsed window). Uneven shards point at skew; evenly
	// slow shards point at shared-resource contention.
	ShardProbesPerSec []float64 `json:"shard_probes_per_sec,omitempty"`
}

// Report is the BENCH_scan.json document.
type Report struct {
	Schema    string     `json:"schema"`
	Go        string     `json:"go"`
	Workloads []Workload `json:"workloads"`
	// Cores records runtime.NumCPU() on the measuring host. Scaling
	// numbers are meaningless without it: per-shard simulators cannot
	// overlap on fewer cores than shards, so a single-core baseline's
	// sub-1.0 efficiency is expected, not a regression.
	Cores int `json:"cores,omitempty"`
	// ScalingEfficiency is scan_parallel_4shard's probes/s over
	// scan_serial_http's — the figure ROADMAP's open item 1 tracks.
	// Perfect 4-way scaling would be 4.0; below 1.0 the parallel run is
	// slower than serial. Gated absolutely (>= minScaling4) on hosts
	// with at least 4 cores, and baseline-relative like the
	// per-workload numbers everywhere, so the ratio cannot silently
	// regress.
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
	// ScalingEfficiency8/16 are the 8- and 16-shard counterparts,
	// reported for the scaling curve but not absolutely gated: past the
	// host's core count extra shards only add merge and scheduling
	// overhead, so their ceiling is Cores, not the shard count.
	ScalingEfficiency8  float64 `json:"scaling_efficiency_8,omitempty"`
	ScalingEfficiency16 float64 `json:"scaling_efficiency_16,omitempty"`
	// Smart/hitlist efficiency: probes saved vs the full scan (fraction
	// of the full run's probes *not* sent) and hosts found (fraction of
	// the full run's responsive hosts the rescan still reached). Both
	// rescans reuse the full workload's seed and universe, so the
	// numbers are deterministic and gated absolutely — a smart rescan
	// must save >= 30% of probes while keeping >= 95% of hosts, the
	// paper's economics for repeat scanning.
	SmartProbesSaved   float64 `json:"smart_probes_saved,omitempty"`
	SmartHostsFound    float64 `json:"smart_hosts_found,omitempty"`
	HitlistProbesSaved float64 `json:"hitlist_probes_saved,omitempty"`
	HitlistHostsFound  float64 `json:"hitlist_hosts_found,omitempty"`
}

// Smart-rescan efficiency gates (absolute, not baseline-relative).
const (
	minProbesSaved = 0.30
	minHostsFound  = 0.95
)

// minScaling4 is the absolute floor for 4-shard scaling on a host that
// can actually overlap 4 shards (runtime.NumCPU() >= 4). With fully
// independent per-shard simulators the parallel run must beat serial
// by at least 2x there; on smaller hosts the floor is advisory only —
// the shards time-slice one core and the honest number is < 1.0.
const minScaling4 = 2.0

func main() {
	out := flag.String("out", "BENCH_scan.json", "write results to this file")
	check := flag.String("check", "", "compare results against this baseline and fail on regression")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression vs the baseline")
	replay := flag.String("replay", "", "re-gate a previously written report against -check without measuring")
	flag.Parse()

	if *replay != "" {
		if *check == "" {
			fatal(fmt.Errorf("-replay requires -check (a baseline to compare against)"))
		}
		raw, err := os.ReadFile(*replay)
		if err != nil {
			fatal(err)
		}
		var prior Report
		if err := json.Unmarshal(raw, &prior); err != nil {
			fatal(fmt.Errorf("parse replay report %s: %v", *replay, err))
		}
		if err := compare(*check, prior, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "iwbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("replayed %s: within %.0f%% of baseline %s\n", *replay, *tolerance*100, *check)
		return
	}

	rep := Report{Schema: "iwbench/v1", Go: runtime.Version(), Cores: runtime.NumCPU()}
	for _, w := range workloads() {
		fmt.Printf("running %-22s ", w.name)
		r := testing.Benchmark(w.fn)
		wl := Workload{
			Name:        w.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if v, ok := r.Extra["probes/s"]; ok {
			wl.ProbesPerSec = v
		}
		if w.shards != nil {
			wl.ShardProbesPerSec = append([]float64(nil), w.shards.rates...)
		}
		fmt.Printf("%12.1f ns/op %8d B/op %6d allocs/op", wl.NsPerOp, wl.BytesPerOp, wl.AllocsPerOp)
		if wl.ProbesPerSec > 0 {
			fmt.Printf(" %10.0f probes/s", wl.ProbesPerSec)
		}
		fmt.Println()
		if len(wl.ShardProbesPerSec) > 0 {
			fmt.Printf("  per shard:")
			for i, r := range wl.ShardProbesPerSec {
				fmt.Printf(" [%d] %.0f", i, r)
			}
			fmt.Println(" probes/s")
		}
		rep.Workloads = append(rep.Workloads, wl)
	}
	rep.ScalingEfficiency = scalingEfficiency(rep.Workloads, "scan_parallel_4shard")
	rep.ScalingEfficiency8 = scalingEfficiency(rep.Workloads, "scan_parallel_8shard")
	rep.ScalingEfficiency16 = scalingEfficiency(rep.Workloads, "scan_parallel_16shard")
	if rep.ScalingEfficiency > 0 {
		fmt.Printf("scaling efficiency (parallel/serial, %d cores): 4-shard %.2f",
			rep.Cores, rep.ScalingEfficiency)
		if rep.ScalingEfficiency8 > 0 {
			fmt.Printf("  8-shard %.2f", rep.ScalingEfficiency8)
		}
		if rep.ScalingEfficiency16 > 0 {
			fmt.Printf("  16-shard %.2f", rep.ScalingEfficiency16)
		}
		fmt.Println()
	}
	gateErr := smartEfficiency(&rep)
	if err := scalingGate(rep); err != nil {
		if gateErr == nil {
			gateErr = err
		} else {
			gateErr = fmt.Errorf("%v; %v", gateErr, err)
		}
	}
	fmt.Printf("smart rescan:   %.1f%% probes saved, %.1f%% hosts found\n",
		100*rep.SmartProbesSaved, 100*rep.SmartHostsFound)
	fmt.Printf("hitlist rescan: %.1f%% probes saved, %.1f%% hosts found\n",
		100*rep.HitlistProbesSaved, 100*rep.HitlistHostsFound)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d workloads)\n", *out, len(rep.Workloads))

	if gateErr != nil {
		fmt.Fprintf(os.Stderr, "iwbench: %v\n", gateErr)
		os.Exit(1)
	}
	if *check != "" {
		if err := compare(*check, rep, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "iwbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("within %.0f%% of baseline %s\n", *tolerance*100, *check)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "iwbench: %v\n", err)
	os.Exit(1)
}

// compare fails when a fresh workload regressed past the tolerance on
// time (ns/op) or allocation count, or allocates where the baseline did
// not. Missing workloads on either side fail: the baseline must be
// refreshed together with workload changes.
func compare(path string, fresh Report, tol float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %v", path, err)
	}
	byName := make(map[string]Workload, len(fresh.Workloads))
	for _, w := range fresh.Workloads {
		byName[w.Name] = w
	}
	var failures []string
	for _, b := range base.Workloads {
		f, ok := byName[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("workload %q missing from this run", b.Name))
			continue
		}
		delete(byName, b.Name)
		if b.NsPerOp > 0 && f.NsPerOp > b.NsPerOp*(1+tol) {
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (+%.0f%%)",
				b.Name, f.NsPerOp, b.NsPerOp, 100*(f.NsPerOp/b.NsPerOp-1)))
		}
		switch {
		case b.AllocsPerOp == 0 && f.AllocsPerOp > 0:
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op vs zero-alloc baseline",
				b.Name, f.AllocsPerOp))
		case b.AllocsPerOp > 0 && float64(f.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol):
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op vs baseline %d (+%.0f%%)",
				b.Name, f.AllocsPerOp, b.AllocsPerOp,
				100*(float64(f.AllocsPerOp)/float64(b.AllocsPerOp)-1)))
		}
	}
	for name := range byName {
		failures = append(failures, fmt.Sprintf("workload %q not in baseline (refresh it)", name))
	}
	if base.ScalingEfficiency > 0 && fresh.ScalingEfficiency < base.ScalingEfficiency*(1-tol) {
		failures = append(failures, fmt.Sprintf(
			"scaling efficiency %.2f vs baseline %.2f (-%.0f%%)",
			fresh.ScalingEfficiency, base.ScalingEfficiency,
			100*(1-fresh.ScalingEfficiency/base.ScalingEfficiency)))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", f)
		}
		return fmt.Errorf("%d regression(s) vs %s", len(failures), path)
	}
	return nil
}

type workload struct {
	name   string
	fn     func(b *testing.B)
	shards *shardRates // non-nil for sharded scan workloads
}

// shardRates is the side channel a sharded benchmark fills in: per-shard
// launched probes per second, from the final measured run. testing.Benchmark
// only surfaces scalar Extra metrics, so the slice travels out of band.
type shardRates struct {
	rates []float64
}

// scalingEfficiency is the named parallel workload's probes/s over
// scan_serial_http's, or 0 when either workload is absent.
func scalingEfficiency(ws []Workload, parallelName string) float64 {
	var serial, parallel float64
	for _, w := range ws {
		switch w.Name {
		case "scan_serial_http":
			serial = w.ProbesPerSec
		case parallelName:
			parallel = w.ProbesPerSec
		}
	}
	if serial <= 0 || parallel <= 0 {
		return 0
	}
	return parallel / serial
}

// scalingGate enforces the absolute 4-shard floor on hosts that can
// overlap the shards, and prints an advisory elsewhere so the number
// still lands in logs without failing single-core CI runners.
func scalingGate(rep Report) error {
	if rep.ScalingEfficiency <= 0 {
		return nil
	}
	if rep.Cores < 4 {
		fmt.Printf("scaling gate advisory: %d core(s) < 4, floor %.1f not enforced (measured %.2f)\n",
			rep.Cores, minScaling4, rep.ScalingEfficiency)
		return nil
	}
	if rep.ScalingEfficiency < minScaling4 {
		fmt.Fprintf(os.Stderr, "GATE 4-shard scaling efficiency %.2f on %d cores, want >= %.1f\n",
			rep.ScalingEfficiency, rep.Cores, minScaling4)
		return fmt.Errorf("scaling-efficiency gate failed")
	}
	return nil
}

// workloads returns the fixed benchmark set. Order is the order they
// appear in BENCH_scan.json.
func workloads() []workload {
	parShards := &shardRates{}
	par8Shards := &shardRates{}
	par16Shards := &shardRates{}
	return []workload{
		{name: "wire_encode_decode", fn: benchWire},
		{name: "netsim_delivery", fn: benchNetsimDelivery},
		{name: "scan_serial_http", fn: benchScan(func() *experiments.ScanResult {
			return experiments.RunScan(inet.NewInternet2017(55), serialCfg())
		})},
		{name: "scan_parallel_4shard", shards: parShards, fn: benchScanSharded(parShards, func() *experiments.ScanResult {
			return experiments.RunScanParallel(inet.NewInternet2017(55), serialCfg(), 4)
		})},
		// The wider shard counts trace the scaling curve past the knee:
		// same logical scan, 8 and 16 independent simulators. On a host
		// with fewer cores than shards these mostly measure merge and
		// scheduler overhead, which is exactly what makes them useful as
		// regression sentinels for the per-shard engine split.
		{name: "scan_parallel_8shard", shards: par8Shards, fn: benchScanSharded(par8Shards, func() *experiments.ScanResult {
			return experiments.RunScanParallel(inet.NewInternet2017(55), serialCfg(), 8)
		})},
		{name: "scan_parallel_16shard", shards: par16Shards, fn: benchScanSharded(par16Shards, func() *experiments.ScanResult {
			return experiments.RunScanParallel(inet.NewInternet2017(55), serialCfg(), 16)
		})},
		{name: "scan_adversity", fn: benchScan(func() *experiments.ScanResult {
			cfg := serialCfg()
			cfg.Path = &netsim.PathParams{
				Delay: 10 * netsim.Millisecond, Jitter: 2 * netsim.Millisecond,
				Loss: 0.02, Reorder: 0.02, Duplicate: 0.01,
			}
			return experiments.RunScan(inet.NewInternet2017(55), cfg)
		})},
		{name: "scan_smart_http", fn: benchScan(func() *experiments.ScanResult {
			return experiments.RunScan(inet.NewInternet2017(55), smartScanInputs().smartCfg())
		})},
		{name: "scan_hitlist", fn: benchScan(func() *experiments.ScanResult {
			return experiments.RunScan(inet.NewInternet2017(55), smartScanInputs().hitlistCfg())
		})},
		{name: "jobs_concurrent", fn: benchJobsConcurrent},
	}
}

// smartInputs is the shared setup for the smart-rescan workloads: one
// full training pass of the serial workload, its records folded into a
// responsiveness model and a hitlist. Built once — the full run is
// deterministic, so every workload and gate computation sees the same
// plan.
type smartInputs struct {
	plan       *prefixtree.Plan
	hitlist    []wire.Addr
	fullProbes int64
	fullHosts  int
}

var (
	smartOnce sync.Once
	smartIn   smartInputs
)

func smartScanInputs() *smartInputs {
	smartOnce.Do(func() {
		full := experiments.RunScan(inet.NewInternet2017(55), serialCfg())
		model := prefixtree.New()
		model.ObserveRecords(full.Records)
		smartIn.plan = prefixtree.NewPlan(model, prefixtree.PlanConfig{
			Threshold: 0.01, Seed: serialCfg().Seed,
		})
		smartIn.hitlist = prefixtree.Hitlist(full.Records)
		smartIn.fullProbes = full.Scan.ProbesStarted
		smartIn.fullHosts = len(smartIn.hitlist)
	})
	return &smartIn
}

// smartCfg is the serial workload re-run under the trained plan: same
// seed and sample, so the deterministic sampler re-selects the same
// addresses and the model's per-/24 verdicts apply exactly.
func (in *smartInputs) smartCfg() experiments.ScanConfig {
	cfg := serialCfg()
	cfg.Smart = in.plan
	return cfg
}

// hitlistCfg probes only the previously responsive hosts, all of them.
func (in *smartInputs) hitlistCfg() experiments.ScanConfig {
	cfg := serialCfg()
	cfg.Hitlist = in.hitlist
	cfg.SampleFraction = 1
	return cfg
}

// smartEfficiency runs one deterministic smart rescan and one hitlist
// rescan, fills the report's efficiency fields, and returns an error
// when the smart rescan misses the absolute gate (>= 30% probes saved
// at >= 95% hosts found). The hitlist numbers are reported but only
// gated on hosts found — a hitlist that loses hosts means the space
// construction broke, while its probe savings are definitional.
func smartEfficiency(rep *Report) error {
	in := smartScanInputs()
	smart := experiments.RunScan(inet.NewInternet2017(55), in.smartCfg())
	hit := experiments.RunScan(inet.NewInternet2017(55), in.hitlistCfg())
	rep.SmartProbesSaved = 1 - float64(smart.Scan.ProbesStarted)/float64(in.fullProbes)
	rep.SmartHostsFound = float64(len(prefixtree.Hitlist(smart.Records))) / float64(in.fullHosts)
	rep.HitlistProbesSaved = 1 - float64(hit.Scan.ProbesStarted)/float64(in.fullProbes)
	rep.HitlistHostsFound = float64(len(prefixtree.Hitlist(hit.Records))) / float64(in.fullHosts)
	var failures []string
	if rep.SmartProbesSaved < minProbesSaved {
		failures = append(failures, fmt.Sprintf("smart rescan saved %.1f%% of probes, want >= %.0f%%",
			100*rep.SmartProbesSaved, 100*minProbesSaved))
	}
	if rep.SmartHostsFound < minHostsFound {
		failures = append(failures, fmt.Sprintf("smart rescan found %.1f%% of hosts, want >= %.0f%%",
			100*rep.SmartHostsFound, 100*minHostsFound))
	}
	if rep.HitlistHostsFound < minHostsFound {
		failures = append(failures, fmt.Sprintf("hitlist rescan found %.1f%% of hosts, want >= %.0f%%",
			100*rep.HitlistHostsFound, 100*minHostsFound))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "GATE %s\n", f)
		}
		return fmt.Errorf("smart-rescan efficiency gate failed (%d)", len(failures))
	}
	return nil
}

// serialCfg is the shared fixed-seed scan workload: a sampled HTTP scan
// of the 2017 universe, small enough that one op is a few hundred
// milliseconds but large enough to exercise the engine, the TCP stacks
// and the analysis pipeline end to end.
func serialCfg() experiments.ScanConfig {
	return experiments.ScanConfig{
		Seed:           9,
		Strategy:       core.StrategyHTTP,
		SampleFraction: 0.002,
		MSSList:        []int{64},
		Repeats:        1,
	}
}

// benchWire measures one full packet round trip through the zero-alloc
// codecs: assemble an IPv4+TCP packet into a reused buffer, then decode
// both headers back out of it.
func benchWire(b *testing.B) {
	ip := &wire.IPv4Header{Protocol: wire.ProtoTCP, Src: 1, Dst: 2, ID: 7, Flags: wire.IPFlagDF}
	tcp := wire.NewTCPHeader()
	tcp.SrcPort = 443
	tcp.DstPort = 34567
	tcp.Flags = wire.FlagACK | wire.FlagPSH
	tcp.Window = 65535
	tcp.MSS = 1460
	payload := make([]byte, 512)
	buf := make([]byte, 0, 2048)
	var ih wire.IPv4Header
	var th wire.TCPHeader
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.AppendTCPPacket(buf[:0], ip, tcp, payload)
		seg, err := wire.DecodeIPv4Into(&ih, buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.DecodeTCPInto(&th, ih.Src, ih.Dst, seg); err != nil {
			b.Fatal(err)
		}
	}
}

type nopNode struct{}

func (nopNode) HandlePacket([]byte) {}

// benchNetsimDelivery measures one pooled send→schedule→dispatch→deliver
// round trip through the discrete-event simulator.
func benchNetsimDelivery(b *testing.B) {
	n := netsim.New(1)
	dst := wire.Addr(42)
	n.Register(dst, nopNode{})
	n.SetPath(netsim.PathParams{Delay: netsim.Millisecond})
	hdr := &wire.IPv4Header{Protocol: wire.ProtoTCP, Src: 1, Dst: dst}
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := n.GetPacket()
		p.B = wire.EncodeIPv4(p.B, hdr, payload)
		n.SendPacket(p)
		n.RunUntilIdle()
	}
}

// benchScan wraps an end-to-end scan as a benchmark, reporting probe
// throughput (launched probes per second of wall time) alongside the
// standard metrics.
func benchScan(run func() *experiments.ScanResult) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var probes int64
		for i := 0; i < b.N; i++ {
			r := run()
			probes += r.Scan.ProbesStarted
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(probes)/secs, "probes/s")
		}
	}
}

// benchScanSharded is benchScan plus the per-shard breakdown: it
// accumulates each shard's launched count across iterations and divides
// by the same elapsed window probes/s uses. testing.Benchmark calls fn
// several times while sizing b.N; resetting the accumulator at entry
// makes the final (measured) run the one that lands in the report.
func benchScanSharded(out *shardRates, run func() *experiments.ScanResult) func(b *testing.B) {
	return func(b *testing.B) {
		out.rates = nil
		var launched []int64
		b.ReportAllocs()
		b.ResetTimer()
		var probes int64
		for i := 0; i < b.N; i++ {
			r := run()
			probes += r.Scan.ProbesStarted
			for s, eng := range r.ShardEngines {
				if s >= len(launched) {
					launched = append(launched, 0)
				}
				launched[s] += eng.Launched
			}
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(probes)/secs, "probes/s")
			for _, n := range launched {
				out.rates = append(out.rates, float64(n)/secs)
			}
		}
	}
}

// benchJobsConcurrent measures the control plane end to end: one op
// boots a job manager on a fresh state directory, submits six jobs
// across three tenants, drains them to completion through the
// fair-share scheduler (four concurrent segments), and shuts the
// manager down. Throughput is launched probes per second of wall time
// with all service overhead — scheduling, per-segment persistence,
// artifact sinks — included, so a regression here that doesn't show in
// scan_serial_http points at the control plane, not the engine.
func benchJobsConcurrent(b *testing.B) {
	base := jobs.Spec{
		Seed: 9, SampleFraction: 0.0008, Rate: 2000, MSSList: []int{64}, Repeats: 1,
	}
	tenants := []string{"a", "a", "b", "b", "c", "c"}
	b.ReportAllocs()
	b.ResetTimer()
	var probes int64
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "iwbench-jobs")
		if err != nil {
			b.Fatal(err)
		}
		m, err := jobs.NewManager(jobs.Config{
			Dir: dir, MaxConcurrent: 4, SliceVirtual: 5 * netsim.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		ids := make([]string, 0, len(tenants))
		for k, tn := range tenants {
			s := base
			s.Tenant, s.Seed = tn, base.Seed+uint64(k)
			v, err := m.Submit(s)
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, v.ID)
		}
		for done := false; !done; {
			done = true
			for _, id := range ids {
				if v, _ := m.Get(id); !v.State.Terminal() {
					done = false
					break
				}
			}
			if !done {
				time.Sleep(200 * time.Microsecond)
			}
		}
		for _, id := range ids {
			v, _ := m.Get(id)
			if v.State != jobs.StateCompleted {
				b.Fatalf("job %s finished as %s (%s)", id, v.State, v.Error)
			}
			probes += v.Launched
		}
		m.Close()
		os.RemoveAll(dir)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(probes)/secs, "probes/s")
	}
}
