// Command iwscan runs a TCP initial-window scan against the simulated
// Internet and streams per-target results to a pluggable output sink.
//
// It is the CLI face of the paper's methodology: a ZMap-style engine
// drives HTTP- or TLS-based IW probes (announcing a 64-byte MSS and
// withholding ACKs until the first retransmission) across the modelled
// IPv4 population, or across a synthetic Alexa-style popular-host list.
// Results stream through the output pipeline one record at a time — in
// permutation order, with O(buffer) memory — and long scans can be
// checkpointed and resumed without re-probing finished targets.
//
// Examples:
//
//	iwscan -strategy http -sample 0.01 -out http.csv
//	iwscan -strategy tls -sample 0.05 -format jsonl -out tls.jsonl
//	iwscan -sample 0.05 -format bin -out scan.iwb   # compact binary output
//	iwscan -strategy http -alexa 10000 -out alexa.csv
//	iwscan -strategy syn -sample 0.01          # plain port scan
//	iwscan -sample 0.0005 -pcap scan.pcap      # capture the packets too
//	iwscan -sample 0.001 -status-interval 1s   # live ZMap-style progress
//	iwscan -sample 0.01 -metrics-out m.json    # dump the telemetry snapshot
//	iwscan -sample 0.01 -retries 2             # re-probe timed-out targets twice
//
// Time-series telemetry (per-shard interval samples plus anomaly
// detection — stalls, retry storms, drop spikes, shard skew):
//
//	iwscan -sample 0.01 -telemetry-out scan.tsl            # JSONL stream
//	iwscan -sample 0.1 -parallel 4 -debug-addr :6060       # live /timeseries + /dash
//	iwscan -sample 0.01 -tail-loss 0.3 -telemetry-out t.tsl -status-interval 1s
//
// Forensics (per-probe flight recorder, see cmd/iwtrace to read records):
//
//	iwscan -sample 0.01 -loss 0.02 -flight-dir fr -flight-on ghost,byte-limit-misread
//	iwscan -sample 0.01 -tail-loss 0.3 -flight-dir fr -flight-on underestimate
//	iwscan -sample 0.01 -flight-dir fr -trace-host 10.4.7.23   # always record this host
//	iwscan -sample 0.1 -debug-addr localhost:6060              # live pprof//metrics//flight
//
// Topology-aware smart scanning (prefix responsiveness model, hitlists):
//
//	iwscan -sample 0.01 -out full.csv -smart-model web.iwsm -smart-update  # full sweep, train model
//	iwscan -sample 0.01 -out smart.csv -smart-model web.iwsm               # hot prefixes first, dark pruned
//	iwscan -sample 0.01 -out s.csv -smart-model web.iwsm -smart-threshold 0.01 -smart-update
//	iwscan -out hit.csv -sample 1 -hitlist full.csv                        # probe only prior responders
//
// Checkpoint/resume (interruption-survivable scans):
//
//	iwscan -sample 0.5 -out big.csv -checkpoint big.ck        # checkpoint as it runs
//	iwscan -sample 0.5 -out big.csv -checkpoint big.ck -time-limit 1h  # stop early...
//	iwscan -sample 0.5 -out big.csv -resume big.ck            # ...and pick up where it left off
//
// A resumed scan appends to -out (the formats are append-safe) and
// produces, together with the interrupted run's output, exactly the
// record stream an uninterrupted scan would have written. The
// checkpoint's fingerprint guards against resuming with a different
// seed, strategy, sample fraction or blacklist.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"iwscan/internal/analysis"
	"iwscan/internal/checkpoint"
	"iwscan/internal/core"
	"iwscan/internal/experiments"
	"iwscan/internal/flight"
	"iwscan/internal/inet"
	"iwscan/internal/netsim"
	"iwscan/internal/output"
	"iwscan/internal/prefixtree"
	"iwscan/internal/scanner"
	"iwscan/internal/timeseries"
	"iwscan/internal/trace"
	"iwscan/internal/validate"
	"iwscan/internal/wire"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "iwscan: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		statusIv = flag.Duration("status-interval", 0, "print ZMap-style progress to stderr at this wall-clock interval (0 = off)")
		metOut   = flag.String("metrics-out", "", "write the final metrics-registry snapshot to this file (JSON; *.prom for Prometheus text)")
		strategy = flag.String("strategy", "http", "probe strategy: http, tls or syn")
		sample   = flag.Float64("sample", 0.01, "fraction of the address space to probe (0..1]")
		rate     = flag.Float64("rate", 10000, "probe launch rate per second of virtual time")
		seed     = flag.Uint64("seed", 2017, "scan seed (permutation, sampling, ISNs)")
		useed    = flag.Uint64("universe-seed", 2017, "universe seed (host population)")
		alexa    = flag.Int("alexa", 0, "scan the top-N popular-host list instead of the address space")
		loss     = flag.Float64("loss", 0, "network packet-loss probability")
		out      = flag.String("out", "", "output path (default stdout)")
		format   = flag.String("format", "csv", "output format: csv, jsonl or bin (length-prefixed binary)")
		pcap     = flag.String("pcap", "", "also write a packet capture of the scan (libpcap format)")
		shard    = flag.Uint64("shard", 0, "this instance's shard number (0-based)")
		shards   = flag.Uint64("shards", 0, "total shards the scan is split across (0 = unsharded)")
		blfile   = flag.String("blacklist", "", "ZMap-style blacklist file (one CIDR per line)")
		parallel = flag.Int("parallel", 1, "run the scan as N concurrent shards and merge the results")
		retries  = flag.Int("retries", 0, "re-launch unreachable probes up to N extra times before giving up")
		ckPath   = flag.String("checkpoint", "", "periodically write resumable scan state to this file")
		ckEvery  = flag.Duration("checkpoint-every", 10*time.Second, "virtual-time interval between checkpoints")
		resume   = flag.String("resume", "", "resume an interrupted scan from this checkpoint file (appends to -out)")
		tlimit   = flag.Duration("time-limit", 0, "stop the scan after this much virtual time, leaving a checkpoint (0 = run to completion)")
		quiet    = flag.Bool("q", false, "suppress the summary on stderr (also skips record retention for it: O(buffer) memory)")

		flightDir    = flag.String("flight-dir", "", "write frozen flight-recorder records (forensic probe timelines) to this directory")
		flightOn     = flag.String("flight-on", "", "comma-separated verdict names that freeze a forensic record (e.g. ghost,byte-limit-misread; 'all' records everything)")
		flightSample = flag.Float64("flight-sample", 0, "additionally freeze this deterministic fraction of all probes (0..1)")
		flightMax    = flag.Int("flight-max", 50, "stop writing records to -flight-dir after this many (0 = unlimited)")
		traceHost    = flag.String("trace-host", "", "comma-separated addresses whose probes are always frozen, whatever the verdict")
		debugAddr    = flag.String("debug-addr", "", "serve a live debug endpoint on this address (pprof, expvar, /metrics, /flight, /timeseries, /dash)")
		tailLoss     = flag.Float64("tail-loss", 0, "deterministic bursty tail-loss probability (drops trailing short segments)")
		reorderP     = flag.Float64("reorder", 0, "per-packet reordering probability on the path")
		telemOut     = flag.String("telemetry-out", "", "stream time-series telemetry to this file (JSONL, one line per interval sample or anomaly; appends under -resume)")
		telemIv      = flag.Duration("telemetry-interval", 0, "virtual-time cadence between telemetry samples (0 = 100ms default)")

		smartModel   = flag.String("smart-model", "", "responsiveness model file (IWSM1) enabling topology-aware -smart scanning; train it with -smart-update")
		smartThresh  = flag.Float64("smart-threshold", 0.02, "prune prefixes whose trained responsiveness ratio falls below this")
		smartExplore = flag.Float64("smart-explore", 0.05, "exploration floor: fraction of prunable prefixes still scanned (negative = none)")
		smartMinPr   = flag.Uint64("smart-min-probes", 1, "minimum observations before a /24 may be pruned")
		smartUpdate  = flag.Bool("smart-update", false, "after a completed scan, fold its results into -smart-model (creates the model if missing)")
		hitlist      = flag.String("hitlist", "", "seed targets from a prior scan's output file (csv, jsonl or iwb) instead of sweeping the space")
	)
	flag.Parse()

	var strat core.Strategy
	switch *strategy {
	case "http":
		strat = core.StrategyHTTP
	case "tls":
		strat = core.StrategyTLS
	case "syn":
		strat = core.StrategySYN
	default:
		fmt.Fprintf(os.Stderr, "iwscan: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	if *sample <= 0 || *sample > 1 {
		fatalf("-sample %v out of range: want 0 < sample <= 1", *sample)
	}

	// Reject flag combinations that earlier versions resolved silently
	// (dropping -parallel under -pcap, overwriting user shard specs).
	userSharded, userSampled := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "shard", "shards":
			userSharded = true
		case "sample":
			userSampled = true
		}
	})
	// A hitlist is already a curated target set: probe all of it unless
	// the user explicitly asked for a sub-sample. Leaving the address-
	// space default (1%) in force would silently skip 99% of the list.
	if *hitlist != "" && !userSampled {
		*sample = 1
	}
	flightEnabled := *flightDir != "" || *flightOn != "" || *traceHost != "" || *flightSample > 0
	if *parallel > 1 {
		if *pcap != "" {
			fatalf("-parallel and -pcap are incompatible (each shard runs its own simulation; there is no single packet stream to capture); drop one")
		}
		if userSharded {
			fatalf("-parallel assigns shard numbers itself and would overwrite -shard/-shards; use one mechanism or the other")
		}
		if *ckPath != "" || *resume != "" {
			fatalf("-checkpoint/-resume track one engine per process; distribute with -shard/-shards across separate runs instead of -parallel")
		}
		// Only the flight recorder genuinely requires serial mode (it
		// binds one simulation's observer slot). The debug server and the
		// telemetry store are shard-aware: each shard attaches its own
		// registry and sampler, and the endpoints serve the merged view.
		if flightEnabled {
			fatalf("the flight recorder observes one simulation; it is incompatible with -parallel (the shard-aware -debug-addr and -telemetry-out work fine)")
		}
	}
	if *alexa > 0 && (*ckPath != "" || *resume != "" || *tlimit > 0) {
		fatalf("-checkpoint/-resume/-time-limit apply to address-space scans, not -alexa list scans")
	}
	smartFlagSet := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "smart-threshold", "smart-explore", "smart-min-probes", "smart-update":
			smartFlagSet = true
		}
	})
	if *smartModel == "" && smartFlagSet {
		fatalf("-smart-threshold/-smart-explore/-smart-min-probes/-smart-update need -smart-model")
	}
	if *smartModel != "" && *hitlist != "" {
		fatalf("-smart-model and -hitlist are different target-selection modes; use one")
	}
	if *alexa > 0 && (*smartModel != "" || *hitlist != "") {
		fatalf("-smart-model/-hitlist apply to address-space scans, not -alexa list scans")
	}
	if *smartThresh <= 0 || *smartThresh >= 1 {
		fatalf("-smart-threshold %v out of range: want 0 < t < 1", *smartThresh)
	}
	if *smartExplore >= 1 {
		fatalf("-smart-explore %v out of range: want e < 1", *smartExplore)
	}
	if *alexa > 0 && (flightEnabled || *debugAddr != "" || *telemOut != "") {
		fatalf("the flight recorder, -debug-addr and -telemetry-out apply to address-space scans, not -alexa list scans")
	}
	if *flightSample < 0 || *flightSample > 1 {
		fatalf("-flight-sample %v out of range: want 0 <= f <= 1", *flightSample)
	}
	if flightEnabled && *flightDir == "" && *debugAddr == "" {
		fatalf("flight recording needs somewhere to surface records: set -flight-dir (write files) or -debug-addr (serve /flight)")
	}

	// Build the flight recorder up front so configuration errors (an
	// unwritable directory, an unknown verdict name) kill the run before
	// any scanning happens, not mid-scan.
	var fr *flight.Recorder
	var dbg *flight.DebugServer
	if flightEnabled {
		fcfg := flight.Config{
			Dir:        *flightDir,
			SampleRate: *flightSample,
			Seed:       *seed,
			MaxWrites:  *flightMax,
		}
		if *flightDir != "" {
			if err := os.MkdirAll(*flightDir, 0o755); err != nil {
				fatalf("-flight-dir: %v", err)
			}
			// Create-or-fail before the scan: a read-only or quota-full
			// directory must not surface as silent record loss later.
			probe := filepath.Join(*flightDir, ".iwscan-writable")
			if err := os.WriteFile(probe, nil, 0o644); err != nil {
				fatalf("-flight-dir %s is not writable: %v", *flightDir, err)
			}
			os.Remove(probe)
		}
		if *flightOn != "" {
			valid := make(map[string]bool)
			for _, v := range validate.VerdictNames() {
				valid[v] = true
			}
			for _, o := range []string{"success", "few-data", "no-data", "error", "unreachable", "all"} {
				valid[o] = true
			}
			fcfg.Triggers = make(map[string]bool)
			for _, v := range strings.Split(*flightOn, ",") {
				v = strings.TrimSpace(v)
				if v == "" {
					continue
				}
				if !valid[v] {
					fatalf("-flight-on: unknown verdict %q (valid: %s, plus outcome taxa and 'all')",
						v, strings.Join(validate.VerdictNames(), ", "))
				}
				fcfg.Triggers[v] = true
			}
		}
		if *traceHost != "" {
			fcfg.TraceHosts = make(map[wire.Addr]bool)
			for _, h := range strings.Split(*traceHost, ",") {
				h = strings.TrimSpace(h)
				if h == "" {
					continue
				}
				addr, err := wire.ParseAddr(h)
				if err != nil {
					fatalf("-trace-host: %v", err)
				}
				fcfg.TraceHosts[addr] = true
			}
		}
		fr = flight.NewRecorder(fcfg)
	}
	if *debugAddr != "" {
		dbg = flight.NewDebugServer()
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatalf("-debug-addr: %v", err)
		}
		fmt.Fprintf(os.Stderr, "iwscan: debug endpoint at http://%s/ (pprof, expvar, /metrics, /flight, /timeseries, /dash)\n", ln.Addr())
		go http.Serve(ln, dbg.Handler())
	}

	u := inet.NewInternet2017(*useed)
	var rec *trace.Recorder
	if *pcap != "" {
		rec = trace.NewRecorder()
	}

	// Output sink: records stream through it as the scan runs. An async
	// stage decouples the simulation from file I/O; its bounded queue
	// pushes back instead of growing.
	outFile := os.Stdout
	if *out != "" {
		oflags := os.O_WRONLY | os.O_CREATE
		if *resume != "" {
			oflags |= os.O_APPEND
		} else {
			oflags |= os.O_TRUNC
		}
		f, err := os.OpenFile(*out, oflags, 0o644)
		if err != nil {
			fatalf("%v", err)
		}
		outFile = f
	}
	fileSink, err := output.NewFileSink(outFile, *format, *resume != "")
	if err != nil {
		fatalf("%v", err)
	}
	sink := output.NewAsyncSink(fileSink, 4096)

	// Time-series telemetry: armed by -telemetry-out (JSONL stream) or
	// implicitly whenever the debug endpoint is up, so /timeseries and
	// /dash have data to serve.
	var ts *timeseries.Store
	var telemFile *os.File
	if *alexa == 0 && (*telemOut != "" || *telemIv > 0 || dbg != nil) {
		ts = timeseries.NewStore(timeseries.Config{Interval: netsim.Time(*telemIv)})
		if *telemOut != "" {
			tflags := os.O_WRONLY | os.O_CREATE
			if *resume != "" {
				tflags |= os.O_APPEND // stream stays valid across resumes
			} else {
				tflags |= os.O_TRUNC
			}
			f, err := os.OpenFile(*telemOut, tflags, 0o644)
			if err != nil {
				fatalf("-telemetry-out: %v", err)
			}
			telemFile = f
			ts.StreamJSONL(f)
		}
	}

	var res *experiments.ScanResult
	var model *prefixtree.Model
	if *alexa > 0 {
		res = experiments.RunPopularScan(u, *alexa, strat, *seed)
		if err := output.WriteAll(sink, res.Records); err != nil {
			fatalf("writing records: %v", err)
		}
	} else {
		cfg := experiments.ScanConfig{
			Seed:               *seed,
			Strategy:           strat,
			SampleFraction:     *sample,
			Rate:               *rate,
			Loss:               *loss,
			Shard:              *shard,
			Shards:             *shards,
			MaxRetries:         *retries,
			StatusInterval:     *statusIv,
			Sink:               sink,
			KeepRecords:        !*quiet,
			CheckpointPath:     *ckPath,
			CheckpointInterval: netsim.Time(*ckEvery),
			TimeLimit:          netsim.Time(*tlimit),
		}
		if *smartUpdate && *out == "" {
			// Training re-reads -out after the scan; without a file the
			// in-memory records are the only training source.
			cfg.KeepRecords = true
		}
		if *statusIv > 0 {
			cfg.StatusOut = os.Stderr
		}
		if *blfile != "" {
			bf, err := os.Open(*blfile)
			if err != nil {
				fatalf("%v", err)
			}
			cfg.Blacklist, err = scanner.ParseBlacklist(bf)
			bf.Close()
			if err != nil {
				fatalf("%v", err)
			}
		}
		if *smartModel != "" {
			m, err := prefixtree.Load(*smartModel)
			switch {
			case err == nil:
				model = m
			case os.IsNotExist(err) && *smartUpdate:
				model = prefixtree.New() // first training run: full sweep, then save
			case os.IsNotExist(err):
				fatalf("-smart-model %s does not exist (train one with -smart-update)", *smartModel)
			default:
				fatalf("-smart-model: %v", err)
			}
			if model.Len() > 0 {
				explore := *smartExplore
				if explore <= 0 {
					explore = -1
				}
				plan := prefixtree.NewPlan(model, prefixtree.PlanConfig{
					Threshold: *smartThresh,
					Explore:   explore,
					MinProbes: *smartMinPr,
					Seed:      *seed,
				})
				cfg.Smart = plan
				if !*quiet {
					s := plan.Summary()
					fmt.Fprintf(os.Stderr,
						"smart: model %s (%d /24s known); plan: %d hot, %d cold, %d pruned /24s, %d pruned /16s, %d explored\n",
						plan.ModelHash(), model.Len(), s.Hot24, s.Cold24, s.Pruned24, s.Pruned16, s.Explored)
				}
			} else if !*quiet {
				fmt.Fprintf(os.Stderr, "smart: model %s is empty; running a full sweep to train it\n", *smartModel)
			}
		}
		if *hitlist != "" {
			recs, err := output.ReadRecordsFile(*hitlist)
			if err != nil {
				fatalf("-hitlist: %v", err)
			}
			cfg.Hitlist = prefixtree.Hitlist(recs)
			if len(cfg.Hitlist) == 0 {
				fatalf("-hitlist %s contains no responsive hosts", *hitlist)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "hitlist: %d responsive hosts from %s (of %d records)\n",
					len(cfg.Hitlist), *hitlist, len(recs))
			}
		}
		if *resume != "" {
			st, err := checkpoint.Load(*resume)
			if err != nil {
				fatalf("%v", err)
			}
			cfg.Resume = st
			if cfg.CheckpointPath == "" {
				cfg.CheckpointPath = *resume // keep checkpointing the resumed run
			}
		}
		if rec != nil {
			cfg.PcapRecorder = rec
		}
		if *reorderP > 0 {
			// An explicit path replaces the default wholesale, so fold
			// the loss probability in rather than losing it.
			cfg.Path = &netsim.PathParams{
				Delay: 10 * netsim.Millisecond, Jitter: 2 * netsim.Millisecond,
				Loss: *loss, Reorder: *reorderP,
			}
		}
		if *tailLoss > 0 {
			// A factory, not a shared instance: the filter keeps per-flow
			// state, and under -parallel each shard runs its own
			// simulation concurrently, so each must build its own copy.
			tlSeed, tlP := *seed, *tailLoss
			cfg.FilterFactories = append(cfg.FilterFactories, func() netsim.Filter {
				return netsim.TailLossFilter(tlSeed, tlP)
			})
		}
		if fr != nil {
			cfg.Flight = fr
			// Join each record against the ground-truth oracle so the
			// trigger verdicts are the validate taxonomy, not just the
			// scan's own outcome taxa.
			oracle := validate.NewOracle(u, 64)
			cfg.FlightClassify = func(r *analysis.Record) (string, string) {
				t := oracle.TruthFor(*r)
				v := validate.Classify(t, r)
				detail := fmt.Sprintf(
					"oracle: live=%v expected-iw=%d byte-based=%v iw-bytes=%d; scan: outcome=%s iw=%d bound=%d byte-limited=%v",
					t.Live, t.Expected, t.ByteBased, t.IWBytes,
					r.Outcome, r.IW, r.LowerBound, r.ByteLimited)
				return v.String(), detail
			}
		}
		if dbg != nil {
			cfg.Debug = dbg
		}
		if ts != nil {
			cfg.Timeseries = ts
		}
		if *parallel > 1 {
			res, err = experiments.RunScanParallelChecked(u, cfg, *parallel)
		} else {
			res, err = experiments.RunScanChecked(u, cfg)
		}
		if err != nil {
			fatalf("%v", err)
		}
	}

	// Drain the async queue and flush the file sink, then close the
	// file, checking both: a full disk is often only reported here.
	if err := sink.Close(); err != nil {
		fatalf("writing records: %v", err)
	}
	if outFile != os.Stdout {
		if err := outFile.Close(); err != nil {
			fatalf("closing %s: %v", *out, err)
		}
	}

	// Model-update-on-completion: fold the finished scan into the
	// responsiveness model. A resumed scan's in-memory records cover only
	// its own segment, so when the output went to a file the whole file
	// (all segments) is re-read instead. Incomplete scans never train —
	// a half-visited permutation would bias every prefix it missed dark
	// on the next threshold pass.
	if *smartUpdate {
		if res.Incomplete {
			fmt.Fprintf(os.Stderr, "iwscan: scan incomplete; -smart-model %s left unchanged\n", *smartModel)
		} else {
			recs := res.Records
			if *out != "" {
				var err error
				if recs, err = output.ReadRecordsFile(*out); err != nil {
					fatalf("-smart-update: re-reading %s: %v", *out, err)
				}
			}
			model.ObserveRecords(recs)
			if err := prefixtree.Save(*smartModel, model); err != nil {
				fatalf("-smart-update: %v", err)
			}
			if !*quiet {
				t := model.Total()
				fmt.Fprintf(os.Stderr,
					"smart: model %s updated with %d records (now %d /24s, %d probed, %d responsive, %d live, %d dark)\n",
					*smartModel, len(recs), model.Len(), t.Probed, t.Responsive, t.Live, t.Dark)
			}
		}
	}

	if ts != nil {
		if err := ts.CloseStream(); err != nil {
			fatalf("writing telemetry: %v", err)
		}
		if telemFile != nil {
			if err := telemFile.Close(); err != nil {
				fatalf("closing %s: %v", *telemOut, err)
			}
		}
		if !*quiet {
			total, byKind, last := ts.AnomalySummary()
			where := "served at /timeseries and /dash"
			if *telemOut != "" {
				where = "written to " + *telemOut
			}
			fmt.Fprintf(os.Stderr, "telemetry: %d samples %s\n", ts.TotalSamples(), where)
			if total > 0 {
				parts := make([]string, 0, len(byKind))
				for _, k := range []string{timeseries.KindStall, timeseries.KindRetryStorm, timeseries.KindDropSpike, timeseries.KindShardSkew} {
					if byKind[k] > 0 {
						parts = append(parts, fmt.Sprintf("%s=%d", k, byKind[k]))
					}
				}
				fmt.Fprintf(os.Stderr, "telemetry: %d anomalies (%s); last: %s\n",
					total, strings.Join(parts, ", "), last.Detail)
			}
		}
	}

	if rec != nil {
		f, err := os.Create(*pcap)
		if err != nil {
			fatalf("%v", err)
		}
		if err := rec.WritePcap(f); err != nil {
			fatalf("writing pcap: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing %s: %v", *pcap, err)
		}
		if !*quiet {
			dropped := ""
			if rec.Dropped() > 0 {
				dropped = fmt.Sprintf(" (%d more dropped at the capture limit)", rec.Dropped())
			}
			fmt.Fprintf(os.Stderr, "wrote %d packets to %s%s\n", len(rec.Packets()), *pcap, dropped)
		}
	}

	if fr != nil {
		if err := fr.WriteErr(); err != nil {
			fatalf("writing flight records: %v", err)
		}
		if !*quiet {
			if *flightDir != "" {
				fmt.Fprintf(os.Stderr, "flight recorder: %d records frozen, %d written to %s\n",
					fr.TotalFrozen(), fr.Written(), *flightDir)
			} else {
				fmt.Fprintf(os.Stderr, "flight recorder: %d records frozen (in memory; served at /flight)\n",
					fr.TotalFrozen())
			}
		}
	}

	if *metOut != "" {
		f, err := os.Create(*metOut)
		if err != nil {
			fatalf("%v", err)
		}
		if strings.HasSuffix(*metOut, ".prom") {
			err = res.Metrics.WritePrometheus(f)
		} else {
			err = res.Metrics.WriteJSON(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatalf("writing metrics: %v", err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *metOut)
		}
	}

	if res.Incomplete {
		effCk := *ckPath
		if effCk == "" {
			effCk = *resume
		}
		fmt.Fprintf(os.Stderr,
			"iwscan: scan stopped at time limit after %d probes; resume with -resume %s\n",
			res.Engine.Launched, orDefault(effCk, "<checkpoint file>"))
	}

	if !*quiet {
		o := analysis.Table1(res.Records)
		fmt.Fprintf(os.Stderr,
			"scanned %d targets in %v virtual time (%d packets on the wire)\n",
			res.Engine.Launched, res.VirtualTime, res.Net.PacketsSent)
		if res.Engine.Retries > 0 {
			fmt.Fprintf(os.Stderr, "re-launched %d timed-out probes\n", res.Engine.Retries)
		}
		fmt.Fprintf(os.Stderr,
			"reachable %d: success %.1f%%, few-data %.1f%%, error %.1f%%\n",
			o.Reachable, 100*o.Success, 100*o.FewData, 100*o.Error)
		if o.Reachable > 0 {
			fmt.Fprintf(os.Stderr, "IW distribution: %s\n",
				analysis.FormatDistribution(analysis.IWDistribution(res.Records)))
		}
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
