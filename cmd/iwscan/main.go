// Command iwscan runs a TCP initial-window scan against the simulated
// Internet and writes per-target results as CSV.
//
// It is the CLI face of the paper's methodology: a ZMap-style engine
// drives HTTP- or TLS-based IW probes (announcing a 64-byte MSS and
// withholding ACKs until the first retransmission) across the modelled
// IPv4 population, or across a synthetic Alexa-style popular-host list.
//
// Examples:
//
//	iwscan -strategy http -sample 0.01 -out http.csv
//	iwscan -strategy tls -sample 0.05 -out tls.csv
//	iwscan -strategy http -alexa 10000 -out alexa.csv
//	iwscan -strategy syn -sample 0.01          # plain port scan
//	iwscan -sample 0.0005 -pcap scan.pcap      # capture the packets too
//	iwscan -sample 0.001 -status-interval 1s   # live ZMap-style progress
//	iwscan -sample 0.01 -metrics-out m.json    # dump the telemetry snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iwscan/internal/analysis"
	"iwscan/internal/core"
	"iwscan/internal/experiments"
	"iwscan/internal/inet"
	"iwscan/internal/scanner"
	"iwscan/internal/trace"
)

func main() {
	var (
		statusIv = flag.Duration("status-interval", 0, "print ZMap-style progress to stderr at this wall-clock interval (0 = off)")
		metOut   = flag.String("metrics-out", "", "write the final metrics-registry snapshot to this file (JSON; *.prom for Prometheus text)")
		strategy = flag.String("strategy", "http", "probe strategy: http, tls or syn")
		sample   = flag.Float64("sample", 0.01, "fraction of the address space to probe (0..1]")
		rate     = flag.Float64("rate", 10000, "probe launch rate per second of virtual time")
		seed     = flag.Uint64("seed", 2017, "scan seed (permutation, sampling, ISNs)")
		useed    = flag.Uint64("universe-seed", 2017, "universe seed (host population)")
		alexa    = flag.Int("alexa", 0, "scan the top-N popular-host list instead of the address space")
		loss     = flag.Float64("loss", 0, "network packet-loss probability")
		out      = flag.String("out", "", "CSV output path (default stdout)")
		pcap     = flag.String("pcap", "", "also write a packet capture of the scan (libpcap format)")
		shard    = flag.Uint64("shard", 0, "this instance's shard number (0-based)")
		shards   = flag.Uint64("shards", 0, "total shards the scan is split across (0 = unsharded)")
		blfile   = flag.String("blacklist", "", "ZMap-style blacklist file (one CIDR per line)")
		parallel = flag.Int("parallel", 1, "run the scan as N concurrent shards and merge the results")
		quiet    = flag.Bool("q", false, "suppress the summary on stderr")
	)
	flag.Parse()

	var strat core.Strategy
	switch *strategy {
	case "http":
		strat = core.StrategyHTTP
	case "tls":
		strat = core.StrategyTLS
	case "syn":
		strat = core.StrategySYN
	default:
		fmt.Fprintf(os.Stderr, "iwscan: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	u := inet.NewInternet2017(*useed)
	var rec *trace.Recorder
	if *pcap != "" {
		rec = trace.NewRecorder()
	}
	var res *experiments.ScanResult
	if *alexa > 0 {
		res = experiments.RunPopularScan(u, *alexa, strat, *seed)
	} else {
		cfg := experiments.ScanConfig{
			Seed:           *seed,
			Strategy:       strat,
			SampleFraction: *sample,
			Rate:           *rate,
			Loss:           *loss,
			Shard:          *shard,
			Shards:         *shards,
			StatusInterval: *statusIv,
		}
		if *statusIv > 0 {
			cfg.StatusOut = os.Stderr
		}
		if *blfile != "" {
			bf, err := os.Open(*blfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "iwscan: %v\n", err)
				os.Exit(1)
			}
			cfg.Blacklist, err = scanner.ParseBlacklist(bf)
			bf.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "iwscan: %v\n", err)
				os.Exit(1)
			}
		}
		if rec != nil {
			cfg.Trace = rec.Filter()
		}
		if *parallel > 1 && rec == nil {
			res = experiments.RunScanParallel(u, cfg, *parallel)
		} else {
			res = experiments.RunScan(u, cfg)
		}
	}

	if rec != nil {
		f, err := os.Create(*pcap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iwscan: %v\n", err)
			os.Exit(1)
		}
		if err := rec.WritePcap(f); err != nil {
			fmt.Fprintf(os.Stderr, "iwscan: writing pcap: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %d packets to %s\n", len(rec.Packets()), *pcap)
		}
	}

	if *metOut != "" {
		f, err := os.Create(*metOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iwscan: %v\n", err)
			os.Exit(1)
		}
		if strings.HasSuffix(*metOut, ".prom") {
			err = res.Metrics.WritePrometheus(f)
		} else {
			err = res.Metrics.WriteJSON(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "iwscan: writing metrics: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *metOut)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iwscan: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := analysis.WriteCSV(w, res.Records); err != nil {
		fmt.Fprintf(os.Stderr, "iwscan: writing CSV: %v\n", err)
		os.Exit(1)
	}

	if !*quiet {
		o := analysis.Table1(res.Records)
		fmt.Fprintf(os.Stderr,
			"scanned %d targets in %v virtual time (%d packets on the wire)\n",
			res.Engine.Launched, res.VirtualTime, res.Net.PacketsSent)
		fmt.Fprintf(os.Stderr,
			"reachable %d: success %.1f%%, few-data %.1f%%, error %.1f%%\n",
			o.Reachable, 100*o.Success, 100*o.FewData, 100*o.Error)
		if o.Reachable > 0 {
			fmt.Fprintf(os.Stderr, "IW distribution: %s\n",
				analysis.FormatDistribution(analysis.IWDistribution(res.Records)))
		}
	}
}
