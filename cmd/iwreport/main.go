// Command iwreport turns iwscan CSV output into the paper's analyses:
// the dataset overview (Table 1), the IW distribution (Figure 3), the
// few-data lower bounds (Table 2), per-AS DBSCAN clusters (Figure 5) and
// byte-limit statistics (§4.2).
//
// Examples:
//
//	iwscan -strategy http -sample 0.05 -out http.csv
//	iwreport http.csv
//	iwreport -clusters -min-hosts 50 http.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"iwscan/internal/analysis"
)

func main() {
	var (
		clusters = flag.Bool("clusters", false, "also run per-AS DBSCAN clustering")
		minHosts = flag.Int("min-hosts", 30, "minimum successful hosts per AS for clustering")
		eps      = flag.Float64("eps", 0.25, "DBSCAN neighbourhood radius")
		sample   = flag.Float64("subsample", 0, "additionally report a random subsample of this fraction")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iwreport [flags] <scan.csv>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "iwreport: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	records, err := analysis.ReadCSV(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iwreport: %v\n", err)
		os.Exit(1)
	}

	o := analysis.Table1(records)
	fmt.Printf("records: %d, reachable: %d\n", len(records), o.Reachable)
	fmt.Printf("success %.1f%%  few-data %.1f%%  error %.1f%%\n",
		100*o.Success, 100*o.FewData, 100*o.Error)
	fmt.Printf("IW distribution (successful hosts):\n  %s\n",
		analysis.FormatDistribution(analysis.IWDistribution(records)))

	t2 := analysis.Table2(records)
	fmt.Printf("few-data lower bounds: NoData %.1f%%", 100*t2.NoData)
	for i := 1; i <= 10; i++ {
		fmt.Printf("  IW%d %.1f%%", i, 100*t2.Bound[i])
	}
	fmt.Printf("  >IW10 %.1f%%\n", 100*t2.Over10)

	bl := analysis.ByteLimit(records)
	if bl.Successful > 0 {
		fmt.Printf("byte-limited IWs: %d of %d dual-MSS hosts (%.2f%%), 4kB group %d, MTU-fill %d\n",
			bl.ByteLimited, bl.Successful, 100*bl.Fraction(), bl.FourKB, bl.MTUFill)
	}

	if *sample > 0 && *sample < 1 {
		sub := analysis.Subsample(records, *sample, 1)
		fmt.Printf("%.0f%% subsample (%d records): %s\n", 100**sample, len(sub),
			analysis.FormatDistribution(analysis.IWDistribution(sub)))
		fmt.Printf("max deviation from full distribution: %.2fpp\n",
			100*analysis.MaxDeviation(records, sub, 0.001))
	}

	if *clusters {
		feats := analysis.ASFeatures(records, *minHosts)
		labels := analysis.DBSCAN(feats, *eps, 2)
		fmt.Printf("AS clustering (%d ASes with >= %d hosts):\n", len(feats), *minHosts)
		for _, c := range analysis.Clusters(feats, labels) {
			fmt.Printf("  cluster %d: %d ASes, %d hosts, dominant %s\n",
				c.Label, len(c.ASes), c.Hosts, analysis.DominantIWOfCluster(c))
			for _, f := range c.ASes {
				fmt.Printf("    %-16s AS%-6d %6d hosts  IW1/2/4/10/other = %.2f/%.2f/%.2f/%.2f/%.2f\n",
					f.Name, f.ASN, f.Hosts, f.Vec[0], f.Vec[1], f.Vec[2], f.Vec[3], f.Vec[4])
			}
		}
	}
}
