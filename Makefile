# Developer workflow for the iwscan reproduction. `make check` is the
# pre-commit gate (see README.md): formatting, vet, full build, full
# test suite, and a race-detector pass over the packages with
# concurrency (the metrics registry is shared across -parallel shards).

GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke

check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/metrics/... ./internal/core/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-smoke runs every benchmark in the module exactly once — a fast
# CI guard that the benchmark harnesses still build and run, without
# measuring anything.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
