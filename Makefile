# Developer workflow for the iwscan reproduction. `make check` is the
# pre-commit gate (see README.md): formatting, vet, full build, full
# test suite, a race-detector pass over the packages with concurrency,
# and the ground-truth validation smoke (oracle accuracy report plus
# golden population comparisons).

GO ?= go

# Where validation artifacts (accuracy report, sweep CSV) land; CI
# uploads this directory.
VALIDATE_OUT ?= artifacts

# Per-target budget for fuzz-smoke.
FUZZ_TIME ?= 3s
# Packages with native fuzz targets (Fuzz* functions).
FUZZ_PKGS := ./internal/wire ./internal/output ./internal/httpsim ./internal/tlssim ./internal/prefixtree

# Coverage floor for the non-blocking report `make cover` prints; the
# build does not fail below it, the number is for trend-watching.
COVER_TARGET ?= 70

.PHONY: check fmt vet build test race cover bench bench-check bench-compare bench-refresh bench-smoke fuzz-smoke flight-smoke telemetry-smoke serve-smoke events-smoke smart-smoke validate-smoke validate-sweep

check: fmt vet build test race flight-smoke telemetry-smoke serve-smoke events-smoke smart-smoke validate-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scanner fans out over shards, the output pipeline runs async
# sinks, and experiments drives both end to end — all under -race along
# with the shared metrics registry, the core estimator, and the packet
# paths (each netsim.Network now owns its packet/event free lists, so
# the race pass guards the remaining cross-shard surfaces: the k-way
# merge, the timeseries store, the debug server, and the jobs
# scheduler; the experiments stress tests hammer them with concurrent
# parallel scans, checkpoint interrupts, and live scrapes).
race:
	$(GO) test -race ./internal/metrics/... ./internal/core/... \
		./internal/scanner/... ./internal/output/... ./internal/experiments/... \
		./internal/netsim/... ./internal/tcpstack/... ./internal/flight/... \
		./internal/timeseries/... ./internal/jobs/... ./internal/events/...

# cover writes one aggregate coverage profile across every package to
# $(VALIDATE_OUT)/cover.out (CI uploads it) plus an HTML render, and
# prints the total against $(COVER_TARGET)%. The threshold is a report,
# not a gate: the line is marked LOW when under target but the target
# never fails, so coverage drift is visible without blocking merges.
cover:
	@mkdir -p $(VALIDATE_OUT)
	$(GO) test -count=1 -coverprofile=$(VALIDATE_OUT)/cover.out -coverpkg=./... ./...
	@$(GO) tool cover -html=$(VALIDATE_OUT)/cover.out -o $(VALIDATE_OUT)/cover.html
	@total=$$($(GO) tool cover -func=$(VALIDATE_OUT)/cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	status=ok; awk "BEGIN{exit !($$total < $(COVER_TARGET))}" && status="LOW (target $(COVER_TARGET)%)"; \
	echo "coverage: $$total% total — $$status ($(VALIDATE_OUT)/cover.out, cover.html)"

# bench runs the canonical fixed-seed benchmark harness (cmd/iwbench)
# and writes $(VALIDATE_OUT)/BENCH_scan.json (ns/op, B/op, allocs/op,
# probes/sec per workload); CI uploads it as an artifact. The absolute
# gates run here: smart-rescan efficiency always, the 4-shard
# scaling-efficiency floor on runners with >= 4 cores.
bench:
	@mkdir -p $(VALIDATE_OUT)
	$(GO) run ./cmd/iwbench -out $(VALIDATE_OUT)/BENCH_scan.json

# bench-check measures afresh and compares against the checked-in
# baseline BENCH_scan.json, failing on a >25% ns/op or allocs/op
# regression. Timing on shared CI runners is noisy — CI runs this as a
# non-blocking annotation job; treat local failures as real.
bench-check:
	@mkdir -p $(VALIDATE_OUT)
	$(GO) run ./cmd/iwbench -out $(VALIDATE_OUT)/BENCH_scan.json \
		-check BENCH_scan.json -tolerance 0.25

# bench-refresh rewrites the checked-in baseline; run it (on a quiet
# machine) whenever a deliberate change shifts the numbers.
bench-refresh:
	$(GO) run ./cmd/iwbench -out BENCH_scan.json

# bench-compare re-gates the report `make bench` just wrote against the
# checked-in baseline without measuring again. CI runs bench (blocking,
# absolute gates) then bench-compare (non-blocking — timing noise on
# shared runners makes baseline-relative deltas advisory).
bench-compare:
	$(GO) run ./cmd/iwbench -replay $(VALIDATE_OUT)/BENCH_scan.json \
		-check BENCH_scan.json -tolerance 0.25

# bench-smoke runs every benchmark in the module exactly once — a fast
# CI guard that the benchmark harnesses still build and run, without
# measuring anything.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# fuzz-smoke runs every native fuzz target briefly ($(FUZZ_TIME) each):
# the wire decoders, the IWB1 binary reader, and the HTTP/TLS parsers.
# `go test -fuzz` takes one target at a time, hence the loop.
fuzz-smoke:
	@set -e; for pkg in $(FUZZ_PKGS); do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz'); do \
			echo "==> fuzz $$pkg $$target ($(FUZZ_TIME))"; \
			$(GO) test $$pkg -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZ_TIME); \
		done; \
	done

# flight-smoke is the forensic-pipeline gate: a short fixed-seed
# adversity scan with anomaly triggers armed must freeze at least one
# flight record, and every export must validate as Chrome trace-event
# JSON (iwtrace smoke). The records land in $(VALIDATE_OUT)/flight,
# which CI uploads with the other validation artifacts.
flight-smoke:
	@mkdir -p $(VALIDATE_OUT)
	rm -rf $(VALIDATE_OUT)/flight
	$(GO) run ./cmd/iwscan -sample 0.004 -seed 3 -loss 0.15 -tail-loss 0.3 \
		-flight-dir $(VALIDATE_OUT)/flight -flight-on ghost,byte-limit-misread \
		-out /dev/null -q
	$(GO) run ./cmd/iwtrace smoke $(VALIDATE_OUT)/flight
	@$(GO) run ./cmd/iwtrace list $(VALIDATE_OUT)/flight

# telemetry-smoke is the observability gate: a fixed-seed 4-shard scan
# under tail loss streams its telemetry to
# $(VALIDATE_OUT)/telemetry.jsonl (CI uploads it), then iwtrace
# re-parses the stream and requires every line tagged, contiguous
# per-shard sample indices, at least one sample from each of the four
# shards, and at least one anomaly — tail loss at 0.3 reliably trips
# the drop-spike detector.
telemetry-smoke:
	@mkdir -p $(VALIDATE_OUT)
	$(GO) run ./cmd/iwscan -sample 0.02 -seed 3 -tail-loss 0.3 -parallel 4 \
		-telemetry-out $(VALIDATE_OUT)/telemetry.jsonl -out /dev/null -q
	$(GO) run ./cmd/iwtrace telemetry -shards 4 -require-anomaly \
		$(VALIDATE_OUT)/telemetry.jsonl

# serve-smoke is the control-plane gate: boot the iwserve daemon
# against a real listener, run two tenants at 3:1 weights, pause and
# resume one job mid-flight, and require (a) fair-share convergence
# within +-10 points of the 75/25 split measured over contended probes
# and (b) the paused-and-resumed job's artifact byte-identical to its
# uninterrupted twin's. The smoke's state directory (job files,
# artifacts, checkpoints) lands in $(VALIDATE_OUT)/serve for CI to
# upload.
serve-smoke:
	@mkdir -p $(VALIDATE_OUT)
	$(GO) run ./cmd/iwserve -smoke -state $(VALIDATE_OUT)/serve

# events-smoke is the control-plane observability gate: the iwserve
# -events-smoke scenario runs a fixed-seed job twice (journal disarmed
# for the reference artifact, then armed with a live SSE watcher) and
# requires (a) the full queued -> running -> completed lifecycle
# observed from the watch stream alone — no /jobs/{id} polls, (b) the
# armed run's artifact byte-identical to the disarmed reference, and
# (c) sequence numbers continuing gap-free across a mid-scenario
# daemon restart. The journal it leaves in
# $(VALIDATE_OUT)/events-serve/events is then re-read offline by
# iwtrace jobs -validate, which enforces the semantic invariants
# (legal lifecycle edges, balanced segment spans, at least one
# dispatch-audit event per job that ran) and that the Chrome trace
# export parses. CI uploads the journal with the other artifacts.
events-smoke:
	@mkdir -p $(VALIDATE_OUT)
	$(GO) run ./cmd/iwserve -events-smoke -state $(VALIDATE_OUT)/events-serve
	$(GO) run ./cmd/iwtrace jobs -validate -min-dispatch 1 \
		$(VALIDATE_OUT)/events-serve/events/events.jsonl

# smart-smoke is the topology-aware-scanning gate: a fixed-seed full
# scan trains a fresh responsiveness model (-smart-update), a rescan of
# the same sample under the trained model prunes dark space, and
# iwtrace smartcmp gates the pair — the smart pass must save >= 30% of
# the probes while re-finding >= 95% of the responsive hosts. The
# model, both record files and the scan logs land in
# $(VALIDATE_OUT)/smart for CI to upload.
smart-smoke:
	@mkdir -p $(VALIDATE_OUT)/smart
	rm -f $(VALIDATE_OUT)/smart/model.iwsm
	$(GO) run ./cmd/iwscan -sample 0.004 -seed 11 -format bin \
		-out $(VALIDATE_OUT)/smart/full.iwb \
		-smart-model $(VALIDATE_OUT)/smart/model.iwsm -smart-update -q
	$(GO) run ./cmd/iwscan -sample 0.004 -seed 11 -format bin \
		-out $(VALIDATE_OUT)/smart/smart.iwb \
		-smart-model $(VALIDATE_OUT)/smart/model.iwsm \
		-smart-threshold 0.01 -smart-explore -1 -q
	$(GO) run ./cmd/iwtrace smartcmp -min-saved 0.30 -min-found 0.95 \
		$(VALIDATE_OUT)/smart/full.iwb $(VALIDATE_OUT)/smart/smart.iwb

# validate-smoke is the ground-truth gate: scan a sample of the 2017
# universe, require >= 99% oracle exact-match accuracy and zero bound
# violations, then compare both checked-in goldens. The accuracy report
# is written to $(VALIDATE_OUT) for CI to upload.
validate-smoke:
	@mkdir -p $(VALIDATE_OUT)
	$(GO) run ./cmd/iwvalidate -mode report -sample 0.02 -min-accuracy 0.99 \
		-out $(VALIDATE_OUT)/accuracy-report.txt
	@cat $(VALIDATE_OUT)/accuracy-report.txt
	$(GO) run ./cmd/iwvalidate -mode golden \
		-golden internal/validate/testdata/golden-http-2017.json
	$(GO) run ./cmd/iwvalidate -mode golden \
		-golden internal/validate/testdata/golden-tls-2017.json

# validate-sweep produces the accuracy-vs-adversity curve artifact
# (full default grid; slower than validate-smoke, CI-only by default).
validate-sweep:
	@mkdir -p $(VALIDATE_OUT)
	$(GO) run ./cmd/iwvalidate -mode sweep -sample 0.01 \
		-out $(VALIDATE_OUT)/sweep.txt -csv $(VALIDATE_OUT)/sweep.csv
	@cat $(VALIDATE_OUT)/sweep.txt
