module iwscan

go 1.22
