// Benchmarks regenerating every table and figure of the paper, plus
// ablation benches for the methodology's design choices and
// micro-benchmarks of the hot paths.
//
// The experiment benches measure the cost of reproducing each result at
// a reduced scan scale and report the headline quality metric alongside
// (via b.ReportMetric), so `go test -bench=.` doubles as a regression
// harness for both speed and fidelity.
package iwscan_test

import (
	"testing"

	"iwscan/internal/analysis"
	"iwscan/internal/core"
	"iwscan/internal/experiments"
	"iwscan/internal/httpsim"
	"iwscan/internal/inet"
	"iwscan/internal/netsim"
	"iwscan/internal/scanner"
	"iwscan/internal/stats"
	"iwscan/internal/tcpstack"
	"iwscan/internal/tlssim"
	"iwscan/internal/wire"
)

// benchSample is the scan scale for the heavyweight experiment benches.
const benchSample = 0.02

// --- one bench per table / figure -------------------------------------------

// BenchmarkTable1ScanOverview reproduces Table 1: full HTTP and TLS
// scans with success/few-data/error classification.
func BenchmarkTable1ScanOverview(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(uint64(2017+i), benchSample)
		r := s.Table1()
		b.ReportMetric(100*r.HTTP.Success, "http-success-%")
		b.ReportMetric(100*r.TLS.Success, "tls-success-%")
	}
}

// BenchmarkFigure2CertChainCCDF reproduces Figure 2: the certificate
// chain length CCDF and its IW-coverage thresholds.
func BenchmarkFigure2CertChainCCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure2(uint64(i), 365000)
		b.ReportMetric(100*r.CoverageMSS64[10], "iw10-coverage-%")
	}
}

// BenchmarkFigure3IWDistribution reproduces Figure 3: the IW
// distribution with subsample-stability analysis.
func BenchmarkFigure3IWDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(uint64(2017+i), benchSample)
		r := s.Figure3()
		b.ReportMetric(100*r.HTTPDist[10], "http-iw10-%")
		b.ReportMetric(100*r.TLSDist[4], "tls-iw4-%")
	}
}

// BenchmarkTable2FewDataLowerBounds reproduces Table 2: lower bounds
// for few-data hosts.
func BenchmarkTable2FewDataLowerBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(uint64(2017+i), benchSample)
		r := s.Table2()
		b.ReportMetric(100*r.HTTP.Bound[7], "http-bound7-%")
		b.ReportMetric(100*r.TLS.Bound[1], "tls-bound1-%")
	}
}

// BenchmarkFigure4AlexaScan reproduces Figure 4: the popular-host scan
// with hostnames available.
func BenchmarkFigure4AlexaScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(uint64(2017+i), benchSample)
		r := s.Figure4(2000)
		b.ReportMetric(100*r.HTTPDist[10], "http-iw10-%")
	}
}

// BenchmarkFigure5ASClustering reproduces Figure 5: DBSCAN clustering
// of per-AS IW mixes.
func BenchmarkFigure5ASClustering(b *testing.B) {
	s := experiments.NewSuite(2017, benchSample)
	s.HTTPScan() // scans outside the timed region: this bench is about clustering
	s.TLSScan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := s.Figure5()
		b.ReportMetric(float64(len(r.HTTPClusters)), "http-clusters")
	}
}

// BenchmarkTable3ServiceClassification reproduces Table 3: per-service
// classification by IP range and reverse DNS.
func BenchmarkTable3ServiceClassification(b *testing.B) {
	s := experiments.NewSuite(2017, benchSample)
	s.HTTPScan()
	s.TLSScan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := s.Table3()
		b.ReportMetric(float64(len(r.HTTP)+len(r.TLS)), "service-rows")
	}
}

// BenchmarkByteLimitDetection reproduces §4.2: byte-configured IW
// detection from paired-MSS scans.
func BenchmarkByteLimitDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(uint64(2017+i), benchSample)
		r := s.ByteLimit()
		b.ReportMetric(100*r.Stats.Fraction(), "byte-limited-%")
	}
}

// BenchmarkScanEfficiency reproduces §3.4: IW scan vs port scan packet
// budgets and extrapolated full-IPv4 durations.
func BenchmarkScanEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Efficiency(inet.NewInternet2017(uint64(2017+i)), uint64(i), 0.01)
		if r.PortScanHours > 0 {
			b.ReportMetric(100*(r.IWScanHours/r.PortScanHours-1), "iw-overhead-%")
		}
	}
}

// BenchmarkValidationGroundTruth reproduces §3.5: ground-truth testbed
// plus loss sweep.
func BenchmarkValidationGroundTruth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Validation(uint64(5 + i))
		ok := 0.0
		if r.AllCorrect() {
			ok = 1
		}
		b.ReportMetric(ok, "all-correct")
	}
}

// BenchmarkPathMTUDiscovery reproduces footnote 1: the RFC 1191 path
// MTU sweep.
func BenchmarkPathMTUDiscovery(b *testing.B) {
	u := inet.NewInternet2017(2017)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.PathMTU(u, uint64(11+i), 1000)
		b.ReportMetric(100*r.MSS1336Frac, "mss1336-%")
	}
}

// BenchmarkMotivationFCT reproduces the §1 motivation: flow completion
// time vs IW plus burst overflow at a constrained link.
func BenchmarkMotivationFCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Motivation(uint64(3 + i))
		if len(r.FCT) > 0 {
			b.ReportMetric(r.FCT[0].RTTs-r.FCT[len(r.FCT)-1].RTTs, "rtts-saved")
		}
	}
}

// BenchmarkAkamaiPerService reproduces the §4.3 per-service IW
// customization probe.
func BenchmarkAkamaiPerService(b *testing.B) {
	u := inet.NewInternet2017(2017)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.AkamaiServices(u, uint64(3+i), 200)
		b.ReportMetric(float64(len(r.IWValues)), "distinct-iws")
	}
}

// --- ablations of the methodology's design choices --------------------------

// BenchmarkAblationAnnouncedMSS compares scan success when announcing
// the paper's 64-byte MSS against a default-like 536 bytes: the small
// MSS is what makes most responses large enough to fill the IW.
func BenchmarkAblationAnnouncedMSS(b *testing.B) {
	for _, mss := range []int{64, 536} {
		b.Run(mssName(mss), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u := inet.NewInternet2017(2017)
				res := experiments.RunScan(u, experiments.ScanConfig{
					Seed: uint64(7 + i), Strategy: core.StrategyHTTP,
					SampleFraction: benchSample, MSSList: []int{mss},
				})
				o := analysis.Table1(res.Records)
				b.ReportMetric(100*o.Success, "success-%")
			}
		})
	}
}

func mssName(mss int) string {
	if mss == 64 {
		return "mss64"
	}
	return "mss536"
}

// BenchmarkAblationHTTPFallbacks compares the full §3.2 strategy
// (redirect following + URI bloat) against plain GET /: the fallbacks
// buy a significant share of the successful estimations.
func BenchmarkAblationHTTPFallbacks(b *testing.B) {
	run := func(b *testing.B, noRedirect, noBloat bool) {
		for i := 0; i < b.N; i++ {
			u := inet.NewInternet2017(2017)
			res := experiments.RunScan(u, experiments.ScanConfig{
				Seed: uint64(9 + i), Strategy: core.StrategyHTTP,
				SampleFraction: benchSample, MSSList: []int{64},
				NoRedirectFollow: noRedirect, NoBloat: noBloat,
			})
			o := analysis.Table1(res.Records)
			b.ReportMetric(100*o.Success, "success-%")
		}
	}
	b.Run("full-strategy", func(b *testing.B) { run(b, false, false) })
	b.Run("no-redirect", func(b *testing.B) { run(b, true, false) })
	b.Run("no-bloat", func(b *testing.B) { run(b, false, true) })
	b.Run("plain-get-only", func(b *testing.B) { run(b, true, true) })
}

// BenchmarkAblationRepeats compares single probes against the paper's
// 3-probe maximum rule under 1% packet loss: repetition recovers the
// tail-loss underestimates.
func BenchmarkAblationRepeats(b *testing.B) {
	for _, repeats := range []int{1, 3} {
		name := "repeats1"
		if repeats == 3 {
			name = "repeats3"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u := inet.NewInternet2017(2017)
				res := experiments.RunScan(u, experiments.ScanConfig{
					Seed: uint64(11 + i), Strategy: core.StrategyHTTP,
					SampleFraction: benchSample, MSSList: []int{64},
					Repeats: repeats, Loss: 0.01,
				})
				// Fidelity: fraction of successful estimates that match
				// the universe's ground truth.
				exact, total := 0, 0
				for j := range res.Records {
					r := &res.Records[j]
					if r.Outcome != core.OutcomeSuccess {
						continue
					}
					spec := u.HostAt(r.Addr)
					if spec == nil {
						continue
					}
					total++
					if r.IW == spec.ExpectedIWSegments(80, 64) {
						exact++
					}
				}
				if total > 0 {
					b.ReportMetric(100*float64(exact)/float64(total), "exact-%")
				}
			}
		})
	}
}

// --- micro-benchmarks of the hot paths ---------------------------------------

// BenchmarkWireEncodeDecodeTCP measures the packet codec.
func BenchmarkWireEncodeDecodeTCP(b *testing.B) {
	src, dst := wire.Addr(0x0a000001), wire.Addr(0x0a000002)
	h := wire.NewTCPHeader()
	h.SrcPort = 12345
	h.DstPort = 80
	h.Flags = wire.FlagACK | wire.FlagPSH
	h.Window = 65535
	payload := make([]byte, 64)
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	var dec wire.TCPHeader
	for i := 0; i < b.N; i++ {
		seg := wire.EncodeTCP(buf[:0], src, dst, h, payload)
		if _, err := wire.DecodeTCPInto(&dec, src, dst, seg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPermutationNext measures the ZMap-style address iterator.
func BenchmarkPermutationNext(b *testing.B) {
	c := scanner.NewCycle(1<<32, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Next(); !ok {
			c = scanner.NewCycle(1<<32, 7)
		}
	}
}

// BenchmarkChainSample measures the Figure-2 chain-length sampler.
func BenchmarkChainSample(b *testing.B) {
	var d tlssim.ChainLenDist
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SampleHash(rng.Uint64())
	}
}

// BenchmarkProbeSingleTarget measures one complete HTTP IW inference
// (6 probes, up to 12 connections) against one host, including the
// virtual network.
func BenchmarkProbeSingleTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := netsim.New(uint64(i))
		net.SetPath(netsim.PathParams{Delay: 10 * netsim.Millisecond})
		addr := wire.MustParseAddr("198.51.100.10")
		host := tcpstack.NewHost(net, addr, tcpstack.Config{
			IW:  tcpstack.IWPolicy{Kind: tcpstack.IWSegments, Segments: 10},
			MSS: tcpstack.MSSPolicy{Floor: 64},
		})
		host.Listen(80, httpsim.NewServer(httpsim.ServerConfig{Root: httpsim.BehaviorPage, PageLen: 8192}))
		sc := core.NewScanner(net, wire.MustParseAddr("192.0.2.1"), core.Config{Seed: uint64(i)})
		done := false
		sc.ProbeTarget(addr, core.TargetConfig{Strategy: core.StrategyHTTP}, func(tr *core.TargetResult) {
			done = tr.Outcome == core.OutcomeSuccess
		})
		net.RunUntilIdle()
		if !done {
			b.Fatal("probe failed")
		}
	}
}

// BenchmarkNetsimEventThroughput measures raw event-loop throughput:
// pooled packet delivery between two nodes.
func BenchmarkNetsimEventThroughput(b *testing.B) {
	net := netsim.New(1)
	net.SetPath(netsim.PathParams{Delay: netsim.Millisecond})
	dst := wire.Addr(2)
	net.Register(dst, nopNode{})
	hdr := &wire.IPv4Header{Protocol: wire.ProtoTCP, Src: 1, Dst: dst}
	payload := make([]byte, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := net.GetPacket()
		p.B = wire.EncodeIPv4(p.B, hdr, payload)
		net.SendPacket(p)
		if i%1024 == 1023 {
			net.RunUntilIdle()
		}
	}
	net.RunUntilIdle()
}

type nopNode struct{}

func (nopNode) HandlePacket([]byte) {}

// BenchmarkHostDerivation measures lazy host-spec derivation, the inner
// loop of universe materialization.
func BenchmarkHostDerivation(b *testing.B) {
	u := inet.NewInternet2017(2017)
	p := u.Prefixes()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.HostAt(p.Nth(uint64(i) % p.Size()))
	}
}
